// Package experiments regenerates every figure and table of the paper's
// evaluation (DESIGN.md §4): each experiment builds its workload on the
// synthetic substrate, runs the pipeline under test, and reports
// paper-vs-measured rows. The cmd/slj-bench binary prints these reports;
// the repository-root benchmarks time their hot paths.
package experiments

import (
	"fmt"
	"strings"

	"github.com/sljmotion/sljmotion/internal/background"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/metrics"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/scoring"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/synth"
	"github.com/sljmotion/sljmotion/internal/track"
)

// Row is one paper-vs-measured comparison line.
type Row struct {
	Name     string
	Paper    string // what the paper reports (often qualitative)
	Measured string // what this reproduction measures
	OK       bool   // whether the measured value matches the paper's shape
}

// Report is the outcome of one experiment.
type Report struct {
	ID    string // e.g. "F1", "T2", "A1"
	Title string
	Rows  []Row
	// Figures holds optional ASCII artefacts keyed by caption.
	Figures map[string]string
	Notes   []string
}

// OK reports whether every row matched.
func (r *Report) OK() bool {
	for _, row := range r.Rows {
		if !row.OK {
			return false
		}
	}
	return true
}

// String renders the report as a fixed-width block.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s\n", r.ID, r.Title)
	for _, row := range r.Rows {
		status := "ok"
		if !row.OK {
			status = "MISMATCH"
		}
		fmt.Fprintf(&sb, "  %-34s paper: %-38s measured: %-30s [%s]\n",
			row.Name, row.Paper, row.Measured, status)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// defaultVideo generates the canonical good-form clip.
func defaultVideo(seed int64) (*synth.Video, error) {
	p := synth.DefaultJumpParams()
	p.Seed = seed
	return synth.Generate(p)
}

// Figure1 — background estimation (Section 2 Step 1): the paper shows the
// first frame and the estimated background side by side. We measure the
// RMSE of the estimate against the true synthetic background.
func Figure1(seed int64) (*Report, error) {
	v, err := defaultVideo(seed)
	if err != nil {
		return nil, err
	}
	est := &background.ChangeDetection{}
	bg, err := est.Estimate(v.Frames)
	if err != nil {
		return nil, err
	}
	rmse, err := background.RMSE(bg, v.Background)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "F1",
		Title: "Figure 1 — first frame and estimated background",
		Figures: map[string]string{
			"(a) first frame (luma)":     imaging.ASCIIGray(v.Frames[0].Gray(), 64),
			"(b) estimated background":   imaging.ASCIIGray(bg.Gray(), 64),
			"reference: true background": imaging.ASCIIGray(v.Background.Gray(), 64),
		},
	}
	rep.Rows = append(rep.Rows, Row{
		Name:     "background recovered",
		Paper:    "qualitative: jumper absent from estimate",
		Measured: fmt.Sprintf("RMSE vs true background = %.2f levels", rmse),
		OK:       rmse < 10,
	})
	return rep, nil
}

// Figure2 — the four foreground-extraction stages. The paper shows masks
// after (a) subtraction, (b) noise removal, (c) spot removal, (d) hole
// fill; the reproduction measures precision/IoU growth per stage.
func Figure2(seed int64) (*Report, error) {
	v, err := defaultVideo(seed)
	if err != nil {
		return nil, err
	}
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		return nil, err
	}
	_, stages, _, err := pipe.RunDetailed(v.Frames)
	if err != nil {
		return nil, err
	}

	k := 8 // drive frame, the paper's canonical mid-action pose
	st := stages[k]
	truth := v.BodyMasks[k]
	score := func(m *imaging.Mask) metrics.MaskScores {
		s, _ := metrics.CompareMasks(m, truth)
		return s
	}
	sub, den, spt, hol := score(st.Subtracted), score(st.Denoised), score(st.SpotsRemoved), score(st.HolesFilled)

	rep := &Report{
		ID:    "F2",
		Title: "Figure 2 — foreground extraction stages (frame 8)",
		Figures: map[string]string{
			"(a) after subtraction":  imaging.ASCIIMask(st.Subtracted, 64),
			"(b) after noise filter": imaging.ASCIIMask(st.Denoised, 64),
			"(c) after spot removal": imaging.ASCIIMask(st.SpotsRemoved, 64),
			"(d) after hole fill":    imaging.ASCIIMask(st.HolesFilled, 64),
		},
	}
	rep.Rows = append(rep.Rows,
		Row{
			Name:     "(a) subtraction",
			Paper:    "\"a lot of noise due to light changes\"",
			Measured: fmt.Sprintf("precision %.3f IoU %.3f", sub.Precision, sub.IoU),
			OK:       sub.Recall > 0.8,
		},
		Row{
			Name:     "(b) noise removal",
			Paper:    "isolated noise deleted",
			Measured: fmt.Sprintf("precision %.3f (Δ%+.3f)", den.Precision, den.Precision-sub.Precision),
			OK:       den.Precision >= sub.Precision,
		},
		Row{
			Name:     "(c) spot removal",
			Paper:    "smaller spots removed",
			Measured: fmt.Sprintf("precision %.3f (Δ%+.3f)", spt.Precision, spt.Precision-den.Precision),
			OK:       spt.Precision >= den.Precision,
		},
		Row{
			Name:     "(d) hole fill",
			Paper:    "small holes filled up",
			Measured: fmt.Sprintf("recall %.3f (Δ%+.3f), IoU %.3f", hol.Recall, hol.Recall-spt.Recall, hol.IoU),
			OK:       hol.Recall >= spt.Recall && hol.IoU >= spt.IoU-1e-9,
		},
	)
	return rep, nil
}

// Figure3 — shadow removal. The paper shows the silhouette with shadows
// removed; the reproduction measures shadow recall and body IoU before and
// after Step 5.
func Figure3(seed int64) (*Report, error) {
	v, err := defaultVideo(seed)
	if err != nil {
		return nil, err
	}
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		return nil, err
	}
	_, stages, sils, err := pipe.RunDetailed(v.Frames)
	if err != nil {
		return nil, err
	}

	// Aggregate over all frames: how much rendered shadow reached the
	// pre-Step-5 mask, how much of that the detector removed, and the final
	// body IoU.
	var beforeIoU, afterIoU float64
	var shadowInMask, shadowCaught int
	for k := range v.Frames {
		b, _ := metrics.CompareMasks(stages[k].HolesFilled, v.BodyMasks[k])
		a, _ := metrics.CompareMasks(sils[k].Mask, v.BodyMasks[k])
		beforeIoU += b.IoU
		afterIoU += a.IoU
		for i, s := range v.ShadowMasks[k].Bits {
			if s && stages[k].HolesFilled.Bits[i] {
				shadowInMask++
				if stages[k].ShadowMask.Bits[i] {
					shadowCaught++
				}
			}
		}
	}
	n := float64(len(v.Frames))
	beforeIoU /= n
	afterIoU /= n
	recall := 0.0
	if shadowInMask > 0 {
		recall = float64(shadowCaught) / float64(shadowInMask)
	}

	k := 14 // landing frame: largest cast shadow
	rep := &Report{
		ID:    "F3",
		Title: "Figure 3 — shadow removal (HSV, Eq. 1-2)",
		Figures: map[string]string{
			"(a) silhouette after shadow removal (frame 14)": imaging.ASCIIMask(sils[k].Mask, 64),
			"shadow mask SM_k (frame 14)":                    imaging.ASCIIMask(stages[k].ShadowMask, 64),
		},
	}
	rep.Rows = append(rep.Rows,
		Row{
			Name:     "shadow detection",
			Paper:    "\"quite successful\" (qualitative)",
			Measured: fmt.Sprintf("recall of shadow pixels in mask = %.2f", recall),
			OK:       recall > 0.5,
		},
		Row{
			Name:     "object quality",
			Paper:    "object isolated from shadow",
			Measured: fmt.Sprintf("body IoU %.3f → %.3f after Step 5", beforeIoU, afterIoU),
			OK:       afterIoU >= beforeIoU,
		},
	)
	return rep, nil
}

// Figure4 — the stick model. The reproduction verifies the model's
// topology and renders the reference pose.
func Figure4() (*Report, error) {
	d := stickmodel.ChildDimensions(66)
	var p stickmodel.Pose
	p.X, p.Y = 48, 60
	p.Rho = [stickmodel.NumSticks]float64{5, 10, 185, 178, 8, 178, 182, 95}
	m := p.Rasterize(d, 96, 128)
	if m.Empty() {
		return nil, fmt.Errorf("figure4: reference pose rasterised empty")
	}
	img := imaging.NewImageFilled(96, 128, imaging.White)
	p.DrawSkeleton(img, d, imaging.Black, imaging.Red)

	rep := &Report{
		ID:    "F4",
		Title: "Figure 4 — stick model for the standing long jump",
		Figures: map[string]string{
			"reference pose silhouette": imaging.ASCIIMask(m, 48),
		},
	}
	names := []string{"S0 trunk", "S1 neck", "S2 upper arm", "S3 thigh", "S4 head", "S5 forearm", "S6 shank", "S7 foot"}
	segs := p.Segments(d)
	for l := 0; l < stickmodel.NumSticks; l++ {
		rep.Rows = append(rep.Rows, Row{
			Name:     names[l],
			Paper:    "one stick, arms/legs merged (side view)",
			Measured: fmt.Sprintf("len %.1f px, thick %.1f px", segs[l].Len(), d.Thick[l]),
			OK:       segs[l].Len() > 0 && d.Thick[l] > 0,
		})
	}
	rep.Notes = append(rep.Notes,
		"joint topology: trunk centre (x0,y0); shoulder joins neck+upper arm; hip joins thigh; chains continue to head/wrist/toe")
	return rep, nil
}

// Figure5 — the angle convention: ρ measured from the vertical (y) axis.
// The reproduction sweeps ρ over the circle and verifies Dir/AngleOf
// round-trips plus the cardinal directions.
func Figure5() (*Report, error) {
	maxErr := 0.0
	for deg := 0.0; deg < 360; deg += 1 {
		back := stickmodel.AngleOf(stickmodel.Dir(deg))
		if d := absF(stickmodel.AngleDiff(deg, back)); d > maxErr {
			maxErr = d
		}
	}
	rep := &Report{
		ID:    "F5",
		Title: "Figure 5 — angle of a stick measured from the y axis",
	}
	rep.Rows = append(rep.Rows,
		Row{
			Name:     "cardinal directions",
			Paper:    "ρ from vertical, 0°..360°",
			Measured: "0°=up, 90°=forward, 180°=down, 270°=back",
			OK: stickmodel.Dir(0).Y < 0 && stickmodel.Dir(90).X > 0 &&
				stickmodel.Dir(180).Y > 0 && stickmodel.Dir(270).X < 0,
		},
		Row{
			Name:     "angle recovery",
			Paper:    "unique ρ per direction",
			Measured: fmt.Sprintf("max round-trip error %.2e°", maxErr),
			OK:       maxErr < 1e-9,
		},
	)
	return rep, nil
}

// Figure6 — silhouettes and (manually drawn) stick models of consecutive
// frames. The reproduction segments the clip, perturbs the ground truth as
// the human annotation, and renders the overlay sequence.
func Figure6(seed int64) (*Report, error) {
	v, err := defaultVideo(seed)
	if err != nil {
		return nil, err
	}
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		return nil, err
	}
	sils, err := pipe.Run(v.Frames)
	if err != nil {
		return nil, err
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), seed)

	rep := &Report{
		ID:      "F6",
		Title:   "Figure 6 — silhouettes and manually drawn stick model",
		Figures: map[string]string{},
	}
	var iouSum float64
	for _, k := range []int{0, 3, 6, 9, 12, 15} {
		sc, _ := metrics.CompareMasks(sils[k].Mask, v.BodyMasks[k])
		iouSum += sc.IoU
		rep.Figures[fmt.Sprintf("frame %02d silhouette", k)] = imaging.ASCIIMask(sils[k].Mask, 48)
	}
	pe := metrics.ComparePoses(manual, v.Truth[0], v.Dims)
	rep.Rows = append(rep.Rows,
		Row{
			Name:     "silhouette sequence",
			Paper:    "~20 frames per clip, clean silhouettes",
			Measured: fmt.Sprintf("%d frames, mean IoU %.3f over 6 samples", len(sils), iouSum/6),
			OK:       iouSum/6 > 0.85,
		},
		Row{
			Name:     "manual first-frame stick model",
			Paper:    "drawn by a trained person",
			Measured: fmt.Sprintf("simulated annotation, %.1f° mean angle error", pe.MeanAngleErr),
			OK:       pe.MeanAngleErr < 15,
		},
	)
	return rep, nil
}

// Figure7Result carries the measured convergence quantities of Figure 7 so
// benchmarks can assert on them.
type Figure7Result struct {
	BestFoundAtFrame2 int
	BestFoundAtFrame3 int
	AngleErrFrame2    float64
	AngleErrFrame3    float64
	ColdBestFoundAt   int
	ColdGenerations   int
}

// Figure7 — computer-generated stick models for frames 2 and 3: the paper
// reports the best model found at the *second generation* thanks to
// temporal seeding, versus ~200 generations for the cold GA of [5].
func Figure7(seed int64) (*Report, *Figure7Result, error) {
	v, err := defaultVideo(seed)
	if err != nil {
		return nil, nil, err
	}
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	sils, err := pipe.Run(v.Frames)
	if err != nil {
		return nil, nil, err
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), seed)
	cfg := pose.DefaultConfig()
	est, err := pose.NewEstimator(v.Dims, cfg)
	if err != nil {
		return nil, nil, err
	}
	if _, err := est.Calibrate(sils[0], manual); err != nil {
		return nil, nil, err
	}

	e2, err := est.EstimateNext(sils[1], manual)
	if err != nil {
		return nil, nil, err
	}
	e3, err := est.EstimateNext(sils[2], e2.Pose)
	if err != nil {
		return nil, nil, err
	}
	cold, err := est.EstimateCold(sils[1])
	if err != nil {
		return nil, nil, err
	}

	res := &Figure7Result{
		BestFoundAtFrame2: e2.GA.NearBestFoundAt,
		BestFoundAtFrame3: e3.GA.NearBestFoundAt,
		AngleErrFrame2:    metrics.ComparePoses(e2.Pose, v.Truth[1], v.Dims).MeanAngleErr,
		AngleErrFrame3:    metrics.ComparePoses(e3.Pose, v.Truth[2], v.Dims).MeanAngleErr,
		ColdBestFoundAt:   cold.GA.NearBestFoundAt,
		ColdGenerations:   cold.GA.Generations,
	}

	overlay2 := imaging.NewImageFilled(v.Params.W, v.Params.H, imaging.White)
	for _, pt := range sils[1].Mask.Points() {
		overlay2.Set(pt.X, pt.Y, imaging.Gray5)
	}
	e2.Pose.DrawSkeleton(overlay2, v.Dims, imaging.Black, imaging.Red)

	rep := &Report{
		ID:    "F7",
		Title: "Figure 7 — GA-estimated stick models, frames 2-3",
		Figures: map[string]string{
			"frame 2 silhouette + estimated model": imaging.ASCIIGray(overlay2.Gray(), 72),
		},
	}
	// The paper's "generated at the second generation" is a claim about how
	// early temporal seeding produces its (visually) best model; the
	// reproduction measures the first generation within 2% of the final
	// fitness and contrasts the cold GA of [5].
	rep.Rows = append(rep.Rows,
		Row{
			Name:     "frame 2 estimate",
			Paper:    "best model at generation 2",
			Measured: fmt.Sprintf("within 2%% of best at generation %d, %.1f° mean angle error", res.BestFoundAtFrame2, res.AngleErrFrame2),
			OK:       res.AngleErrFrame2 < 15 && res.BestFoundAtFrame2 <= 15,
		},
		Row{
			Name:     "frame 3 estimate",
			Paper:    "best model at generation 2",
			Measured: fmt.Sprintf("within 2%% of best at generation %d, %.1f° mean angle error", res.BestFoundAtFrame3, res.AngleErrFrame3),
			OK:       res.AngleErrFrame3 < 15 && res.BestFoundAtFrame3 <= 15,
		},
		Row{
			Name:     "cold baseline [5]",
			Paper:    "~200 generations for high accuracy",
			Measured: fmt.Sprintf("within 2%% of best at generation %d of %d budget", res.ColdBestFoundAt, res.ColdGenerations),
			OK:       res.ColdBestFoundAt > res.BestFoundAtFrame2,
		},
	)
	return rep, res, nil
}

// Table1 — the evaluation standards, verified against the encoded rules.
func Table1() (*Report, error) {
	std := scoring.Standards()
	rules := scoring.Rules()
	byStd := map[string]scoring.Rule{}
	for _, r := range rules {
		byStd[r.Standard] = r
	}
	rep := &Report{ID: "T1", Title: "Table 1 — standing long jump evaluation standards"}
	for _, s := range std {
		r, ok := byStd[s.ID]
		rep.Rows = append(rep.Rows, Row{
			Name:     fmt.Sprintf("%s (%s)", s.ID, s.Stage),
			Paper:    s.Description,
			Measured: fmt.Sprintf("rule %s: %s", r.ID, r.Formula),
			OK:       ok && r.Stage == s.Stage,
		})
	}
	return rep, nil
}

// Table2Result carries the rule-level confusion for benchmark assertions.
type Table2Result struct {
	TruthExact int // clips whose truth-level rule outcome matches exactly
	EstExact   int // clips whose estimated-level outcome matches exactly
	Clips      int
}

// Table2 — the scoring rules run on the planted-defect clips, both on
// ground-truth poses (pure rule check) and on poses estimated end-to-end
// from pixels.
func Table2(seed int64, estimated bool) (*Report, *Table2Result, error) {
	wantFail := map[string]string{
		"good-form":        "",
		"no-knee-bend":     "R1",
		"no-neck-bend":     "R2",
		"no-arm-backswing": "R3",
		"straight-arms":    "R4",
		"no-air-knee-bend": "R5",
		"upright-trunk":    "R6",
		"no-arm-forward":   "R7",
	}
	base := synth.DefaultJumpParams()
	base.Seed = seed
	clips := synth.DefectClips(base)
	res := &Table2Result{Clips: len(clips)}
	rep := &Report{ID: "T2", Title: "Table 2 — scoring rules on planted-defect jumps"}
	if estimated {
		rep.Title += " (poses estimated from pixels)"
	} else {
		rep.Title += " (ground-truth poses)"
	}

	for _, clip := range clips {
		v, err := synth.Generate(clip.Params)
		if err != nil {
			return nil, nil, err
		}
		var poses []stickmodel.Pose
		if estimated {
			an, err := core.New(core.DefaultConfig())
			if err != nil {
				return nil, nil, err
			}
			out, err := an.Analyze(v.Frames, v.ManualAnnotation(synth.DefaultAnnotationError(), seed))
			if err != nil {
				return nil, nil, err
			}
			poses = out.Poses
		} else {
			poses = v.Truth
		}
		initW, airW := track.FixedWindows(clip.Params.Frames)
		report, err := scoring.NewScorer().Score(poses, initW, airW)
		if err != nil {
			return nil, nil, err
		}
		var failed []string
		failedSet := map[string]bool{}
		for _, r := range report.Results {
			if !r.Passed {
				failed = append(failed, r.Rule.ID)
				failedSet[r.Rule.ID] = true
			}
		}
		got := strings.Join(failed, ",")
		want := wantFail[clip.Name]
		exact := got == want
		if exact {
			if estimated {
				res.EstExact++
			} else {
				res.TruthExact++
			}
		}
		// Ground truth is judged on exact match. Estimated poses are judged
		// on whether the planted defect is detected (good-form: nothing
		// spurious); extra spurious failures are visible in the measured
		// column and summarised in the notes.
		ok := exact
		if estimated && want != "" {
			ok = failedSet[want]
		}
		rep.Rows = append(rep.Rows, Row{
			Name:     clip.Name,
			Paper:    fmt.Sprintf("should fail {%s}", want),
			Measured: fmt.Sprintf("failed {%s}, score %d/7", got, report.Passed),
			OK:       ok,
		})
	}
	if estimated {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("exact rule-set matches: %d/%d clips; remaining gaps are spurious or missed R2/R3/R4 firings — neck and elbow angles are weakly observable in side-view silhouettes (see EXPERIMENTS.md)", res.EstExact, res.Clips))
	}
	return rep, res, nil
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
