package experiments

import (
	"strings"
	"testing"
)

func TestFigure1(t *testing.T) {
	rep, err := Figure1(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("figure 1 mismatch:\n%s", rep)
	}
	if len(rep.Figures) != 3 {
		t.Error("figure artefacts missing")
	}
}

func TestFigure2(t *testing.T) {
	rep, err := Figure2(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("figure 2 mismatch:\n%s", rep)
	}
	if len(rep.Rows) != 4 {
		t.Errorf("figure 2 needs 4 stage rows, got %d", len(rep.Rows))
	}
}

func TestFigure3(t *testing.T) {
	rep, err := Figure3(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("figure 3 mismatch:\n%s", rep)
	}
}

func TestFigure4(t *testing.T) {
	rep, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("figure 4 mismatch:\n%s", rep)
	}
	if len(rep.Rows) != 8 {
		t.Errorf("one row per stick expected, got %d", len(rep.Rows))
	}
}

func TestFigure5(t *testing.T) {
	rep, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("figure 5 mismatch:\n%s", rep)
	}
}

func TestFigure6(t *testing.T) {
	rep, err := Figure6(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("figure 6 mismatch:\n%s", rep)
	}
}

func TestFigure7(t *testing.T) {
	rep, res, err := Figure7(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("figure 7 mismatch:\n%s", rep)
	}
	// The reproduction's headline shape: temporal seeding converges far
	// earlier than the cold baseline.
	if res.ColdBestFoundAt <= res.BestFoundAtFrame2 {
		t.Errorf("cold (%d) should converge later than temporal (%d)",
			res.ColdBestFoundAt, res.BestFoundAtFrame2)
	}
}

func TestTable1(t *testing.T) {
	rep, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("table 1 mismatch:\n%s", rep)
	}
	if len(rep.Rows) != 7 {
		t.Errorf("7 standards expected, got %d", len(rep.Rows))
	}
}

func TestTable2Truth(t *testing.T) {
	rep, res, err := Table2(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("table 2 (truth) mismatch:\n%s", rep)
	}
	if res.TruthExact != res.Clips {
		t.Errorf("truth-level exact matches %d/%d", res.TruthExact, res.Clips)
	}
}

func TestTable2Estimated(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline on 8 clips")
	}
	rep, res, err := Table2(1, true)
	if err != nil {
		t.Fatal(err)
	}
	// Estimation-level detection: at least 6 of 8 clips must detect their
	// planted defect (R2/R4 are documented weak spots).
	detected := 0
	for _, row := range rep.Rows {
		if row.OK {
			detected++
		}
	}
	if detected < 6 {
		t.Errorf("only %d/8 clips detected their defect:\n%s", detected, rep)
	}
	if res.Clips != 8 {
		t.Errorf("clips = %d", res.Clips)
	}
}

func TestAblationSeeding(t *testing.T) {
	rep, res, err := AblationSeeding(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("A1 mismatch:\n%s", rep)
	}
	if res.TemporalAngleErr >= res.ColdAngleErr {
		t.Error("temporal must beat cold on angle error")
	}
}

func TestAblationBackground(t *testing.T) {
	rep, err := AblationBackground(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("A2 mismatch:\n%s", rep)
	}
}

func TestAblationShadow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline twice")
	}
	rep, err := AblationShadow(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("A3 mismatch:\n%s", rep)
	}
}

func TestAblationTracking(t *testing.T) {
	if testing.Short() {
		t.Skip("tracks the clip three times")
	}
	rep, err := AblationTracking(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("A4 mismatch:\n%s", rep)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{
		ID:    "X",
		Title: "demo",
		Rows: []Row{
			{Name: "a", Paper: "p", Measured: "m", OK: true},
			{Name: "b", Paper: "p", Measured: "m", OK: false},
		},
		Notes: []string{"n"},
	}
	out := rep.String()
	for _, frag := range []string{"== X: demo", "[ok]", "[MISMATCH]", "note: n"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
	if rep.OK() {
		t.Error("report with a mismatch must not be OK")
	}
}
