package experiments

import (
	"fmt"

	"github.com/sljmotion/sljmotion/internal/background"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/metrics"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// AblationSeedingResult carries the A1 measurements.
type AblationSeedingResult struct {
	TemporalInitialFitness float64
	ColdInitialFitness     float64
	TemporalBestFoundAt    float64 // mean over frames
	ColdBestFoundAt        float64
	TemporalAngleErr       float64
	ColdAngleErr           float64
}

// AblationSeeding — experiment A1: temporal seeding (the paper's
// contribution) versus the cold-start GA of Shoji et al. [5], measured over
// frames 2..8 of the canonical clip.
func AblationSeeding(seed int64) (*Report, *AblationSeedingResult, error) {
	v, err := defaultVideo(seed)
	if err != nil {
		return nil, nil, err
	}
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	sils, err := pipe.Run(v.Frames)
	if err != nil {
		return nil, nil, err
	}
	est, err := pose.NewEstimator(v.Dims, pose.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), seed)
	if _, err := est.Calibrate(sils[0], manual); err != nil {
		return nil, nil, err
	}

	res := &AblationSeedingResult{}
	frames := []int{1, 2, 3, 4, 5, 6, 7}
	prev := manual
	for _, k := range frames {
		warm, err := est.EstimateNext(sils[k], prev)
		if err != nil {
			return nil, nil, err
		}
		cold, err := est.EstimateCold(sils[k])
		if err != nil {
			return nil, nil, err
		}
		res.TemporalInitialFitness += warm.GA.History[0]
		res.ColdInitialFitness += cold.GA.History[0]
		res.TemporalBestFoundAt += float64(warm.GA.NearBestFoundAt)
		res.ColdBestFoundAt += float64(cold.GA.NearBestFoundAt)
		res.TemporalAngleErr += metrics.ComparePoses(warm.Pose, v.Truth[k], v.Dims).MeanAngleErr
		res.ColdAngleErr += metrics.ComparePoses(cold.Pose, v.Truth[k], v.Dims).MeanAngleErr
		prev = warm.Pose
	}
	n := float64(len(frames))
	res.TemporalInitialFitness /= n
	res.ColdInitialFitness /= n
	res.TemporalBestFoundAt /= n
	res.ColdBestFoundAt /= n
	res.TemporalAngleErr /= n
	res.ColdAngleErr /= n

	rep := &Report{ID: "A1", Title: "Ablation — temporal seeding vs cold-start GA [5] (frames 2-8)"}
	rep.Rows = append(rep.Rows,
		Row{
			Name:     "initial population fitness",
			Paper:    "temporal population derived from previous frame",
			Measured: fmt.Sprintf("temporal %.3f vs cold %.3f", res.TemporalInitialFitness, res.ColdInitialFitness),
			OK:       res.TemporalInitialFitness < res.ColdInitialFitness,
		},
		Row{
			Name:     "mean angle error",
			Paper:    "temporal models \"quite good\"",
			Measured: fmt.Sprintf("temporal %.1f° vs cold %.1f°", res.TemporalAngleErr, res.ColdAngleErr),
			OK:       res.TemporalAngleErr < res.ColdAngleErr,
		},
		Row{
			Name:     "generations to 2%-converged",
			Paper:    "2nd generation vs ~200 [5]",
			Measured: fmt.Sprintf("temporal %.1f vs cold %.1f (means)", res.TemporalBestFoundAt, res.ColdBestFoundAt),
			OK:       res.TemporalBestFoundAt < res.ColdBestFoundAt,
		},
	)
	return rep, res, nil
}

// AblationBackground — experiment A2: Step 1 estimator choice. Compares
// the paper's change detection against temporal median and running mean on
// background RMSE and downstream silhouette IoU.
func AblationBackground(seed int64) (*Report, error) {
	v, err := defaultVideo(seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "A2", Title: "Ablation — background estimators (Step 1)"}

	type variant struct {
		name string
		est  background.Estimator
	}
	variants := []variant{
		{"change detection (paper)", &background.ChangeDetection{}},
		{"temporal median", background.Median{}},
		{"running mean α=0.1", &background.RunningMean{Alpha: 0.1}},
	}
	var rmseCD, rmseRM float64
	for _, tc := range variants {
		pipe, err := segmentation.New(segmentation.DefaultConfig())
		if err != nil {
			return nil, err
		}
		pipe.WithEstimator(tc.est)
		bg, err := pipe.EstimateBackground(v.Frames)
		if err != nil {
			return nil, err
		}
		rmse, err := background.RMSE(bg, v.Background)
		if err != nil {
			return nil, err
		}
		sils, err := pipe.Run(v.Frames)
		if err != nil {
			return nil, err
		}
		var iou float64
		for k := range sils {
			s, _ := metrics.CompareMasks(sils[k].Mask, v.BodyMasks[k])
			iou += s.IoU
		}
		iou /= float64(len(sils))
		// The running mean is included as the known-weak baseline: its row
		// is informational, while the paper's estimator and the median must
		// deliver usable silhouettes.
		ok := iou > 0.85
		switch tc.name {
		case "change detection (paper)":
			rmseCD = rmse
		case "running mean α=0.1":
			rmseRM = rmse
			ok = true
		}
		rep.Rows = append(rep.Rows, Row{
			Name:     tc.name,
			Paper:    "paper uses change detection",
			Measured: fmt.Sprintf("bg RMSE %.2f, downstream IoU %.3f", rmse, iou),
			OK:       ok,
		})
	}
	rep.Rows = append(rep.Rows, Row{
		Name:     "shape: running mean smears the jumper",
		Paper:    "motivation for change detection",
		Measured: fmt.Sprintf("RMSE %.2f (mean) vs %.2f (change detection)", rmseRM, rmseCD),
		OK:       rmseRM > rmseCD,
	})
	return rep, nil
}

// AblationShadow — experiment A3: scoring with and without Step 5. Without
// shadow removal the silhouette carries the cast shadow, degrading the
// estimated poses and therefore the rule values.
func AblationShadow(seed int64) (*Report, error) {
	v, err := defaultVideo(seed)
	if err != nil {
		return nil, err
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), seed)

	run := func(disable bool) (float64, int, error) {
		cfg := core.DefaultConfig()
		cfg.Segmentation.DisableShadowRemoval = disable
		an, err := core.New(cfg)
		if err != nil {
			return 0, 0, err
		}
		out, err := an.Analyze(v.Frames, manual)
		if err != nil {
			return 0, 0, err
		}
		se, err := metrics.CompareSequences(out.Poses, v.Truth, v.Dims)
		if err != nil {
			return 0, 0, err
		}
		return se.MeanAngle, out.Report.Passed, nil
	}

	angleOn, passedOn, err := run(false)
	if err != nil {
		return nil, err
	}
	angleOff, passedOff, err := run(true)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "A3", Title: "Ablation — shadow removal on/off (Step 5)"}
	rep.Rows = append(rep.Rows,
		Row{
			Name:     "pose error with Step 5",
			Paper:    "shadow removal enables clean silhouettes",
			Measured: fmt.Sprintf("mean angle error %.1f°, score %d/7", angleOn, passedOn),
			OK:       angleOn < 15 && passedOn >= 6,
		},
		Row{
			Name:     "pose error without Step 5",
			Paper:    "shadows would corrupt the silhouette",
			Measured: fmt.Sprintf("mean angle error %.1f°, score %d/7", angleOff, passedOff),
			OK:       angleOff >= angleOn,
		},
	)
	return rep, nil
}

// AblationTracking — extra ablation: the pose-tracking extensions
// (velocity seeding, refinement, temporal prior) versus the paper-pure GA,
// on the canonical clip.
func AblationTracking(seed int64) (*Report, error) {
	v, err := defaultVideo(seed)
	if err != nil {
		return nil, err
	}
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		return nil, err
	}
	sils, err := pipe.Run(v.Frames)
	if err != nil {
		return nil, err
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), seed)

	run := func(mod func(*pose.Config)) (float64, error) {
		cfg := pose.DefaultConfig()
		mod(&cfg)
		est, err := pose.NewEstimator(v.Dims, cfg)
		if err != nil {
			return 0, err
		}
		if _, err := est.Calibrate(sils[0], manual); err != nil {
			return 0, err
		}
		out, err := est.EstimateSequence(sils, manual)
		if err != nil {
			return 0, err
		}
		poses := make([]stickmodel.Pose, len(out))
		for i, e := range out {
			poses[i] = e.Pose
		}
		se, err := metrics.CompareSequences(poses, v.Truth, v.Dims)
		if err != nil {
			return 0, err
		}
		return se.MeanAngle, nil
	}

	full, err := run(func(c *pose.Config) {})
	if err != nil {
		return nil, err
	}
	pure, err := run(func(c *pose.Config) {
		c.TemporalLambda = 0
		c.AnatomyLambda = 0
		c.RefineRounds = 0
		c.UseVelocity = false
		c.ExploreFraction = 0
	})
	if err != nil {
		return nil, err
	}
	noRefine, err := run(func(c *pose.Config) { c.RefineRounds = 0 })
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "A4", Title: "Ablation — tracking extensions vs paper-pure GA"}
	rep.Rows = append(rep.Rows,
		Row{
			Name:     "full tracker (this repo)",
			Paper:    "paper qualitative only",
			Measured: fmt.Sprintf("sequence mean angle error %.1f°", full),
			OK:       full < 15,
		},
		Row{
			Name:     "paper-pure GA (no priors/refine/velocity)",
			Paper:    "paper's §3 as written",
			Measured: fmt.Sprintf("sequence mean angle error %.1f°", pure),
			OK:       pure >= full,
		},
		Row{
			Name:     "no refinement stage",
			Paper:    "n/a",
			Measured: fmt.Sprintf("sequence mean angle error %.1f°", noRefine),
			OK:       noRefine >= full*0.5,
		},
	)
	return rep, nil
}
