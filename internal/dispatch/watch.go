package dispatch

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"github.com/sljmotion/sljmotion/internal/events"
	"github.com/sljmotion/sljmotion/internal/jobs"
)

// Remote is a Watcher and an EventSource.
var (
	_ jobs.Watcher     = (*Remote)(nil)
	_ jobs.EventSource = (*Remote)(nil)
)

// EventHub returns the dispatcher's local event feed: its own observations
// of every routed job (submissions, cache-hit completions, terminal states
// resolved by polls or streams), for the global dashboard route. Sequence
// numbers on this feed are local to the dispatcher.
func (r *Remote) EventHub() *events.Hub { return r.hub }

// Watch streams one routed job's events by proxying the SSE stream from
// the worker node that owns it, preserving the node's per-job sequence
// numbers end to end — so a client's Last-Event-ID survives front-end
// reconnects unchanged. If the stream cannot be established, or is cut
// mid-flight, Watch degrades to polling-backed synthetic events: the
// node's status is polled on WatchPollInterval and each observed change
// becomes an event (opening with a snapshot, since the missed deltas are
// unrecoverable). A job already terminal in the local record is answered
// with an immediate terminal event — cache-hit submissions are streamable
// the moment Submit returns.
func (r *Remote) Watch(ctx context.Context, id string, afterSeq uint64) (<-chan events.Event, error) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return nil, jobs.ErrNotFound
	}
	// Only cache-born jobs synthesize their terminal event locally: the
	// worker never had a job under this id, so there is nothing to proxy.
	// Jobs that ran on a worker always proxy — the worker's retained
	// history serves resumes even after this dispatcher saw the terminal.
	if e.local {
		term, ok := r.terminalEventLocked(id, e, afterSeq)
		r.mu.Unlock()
		if !ok {
			return nil, jobs.ErrNotFound
		}
		ch := make(chan events.Event, 1)
		ch <- term
		close(ch)
		return ch, nil
	}
	r.mu.Unlock()

	ch := make(chan events.Event, 16)
	go r.watchProxy(ctx, id, e, afterSeq, ch)
	return ch, nil
}

// terminalEventLocked synthesizes the immediate terminal event of a job
// whose terminal state this dispatcher already holds. The sequence number
// continues after the client's resume point (the worker's numbering is
// unknowable for locally-terminal records). Caller holds mu.
func (r *Remote) terminalEventLocked(id string, e *entry, afterSeq uint64) (events.Event, bool) {
	if e.status != nil && !e.status.State.Terminal() {
		return events.Event{}, false
	}
	if e.status == nil && !e.done && e.err == nil && e.result == nil {
		return events.Event{}, false
	}
	ev := events.Event{Seq: afterSeq + 1, JobID: id, At: e.finished, Result: e.result}
	switch {
	case e.err != nil || (e.status != nil && e.status.State == jobs.StateFailed):
		ev.Type, ev.State = events.TypeFailed, string(jobs.StateFailed)
		if e.err != nil {
			ev.Error = e.err.Error()
		} else {
			ev.Error = e.status.Err
		}
	default:
		ev.Type, ev.State = events.TypeDone, string(jobs.StateDone)
	}
	return ev, true
}

// watchProxy drives one Watch channel: live SSE from the owning node
// first, the polling fallback after any stream failure.
func (r *Remote) watchProxy(ctx context.Context, id string, e *entry, afterSeq uint64, ch chan<- events.Event) {
	defer close(ch)
	lastSeq := afterSeq
	if r.streamFrom(ctx, id, e, &lastSeq, ch) || ctx.Err() != nil {
		return
	}
	r.watchPoll(ctx, id, lastSeq, ch)
}

// streamFrom proxies the worker's SSE stream into ch. It reports true when
// the stream delivered a terminal event (the watch is complete); false
// means the caller should fall back to polling. lastSeq tracks the highest
// forwarded sequence number so the fallback keeps the numbering monotonic.
func (r *Remote) streamFrom(ctx context.Context, id string, e *entry, lastSeq *uint64, ch chan<- events.Event) bool {
	r.mu.Lock()
	url := e.node.url
	wid := e.workerID
	r.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/jobs/"+wid+"/events", nil)
	if err != nil {
		return false
	}
	if *lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastSeq, 10))
	}
	resp, err := r.streamClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	fr := events.NewFrameReader(resp.Body)
	for {
		f, err := fr.Next()
		if err != nil {
			return false // cut mid-stream (or clean close without terminal)
		}
		ev, err := f.DecodeEvent()
		if err != nil {
			return false
		}
		ev.JobID = id
		if ev.Seq > *lastSeq {
			*lastSeq = ev.Seq
		}
		r.observeStreamed(id, e, ev)
		select {
		case ch <- ev:
		case <-ctx.Done():
			return true // stop entirely; no fallback after cancellation
		}
		if ev.Terminal() {
			return true
		}
	}
}

// observeStreamed folds a proxied terminal event into the local record:
// the embedded result document (when the worker attached one) makes the
// job servable from this dispatcher without another round trip, and the
// listing/metrics converge without a poll.
func (r *Remote) observeStreamed(id string, e *entry, ev events.Event) {
	if !ev.Terminal() {
		return
	}
	now := r.clock()
	fin := ev.At
	if fin.IsZero() {
		fin = now
	}
	st := jobs.Status{ID: id, State: jobs.State(ev.State), CreatedAt: e.created, FinishedAt: &fin, Err: ev.Error}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.status == nil {
		e.status = &st
	}
	if ev.Type == events.TypeFailed && e.err == nil && ev.Error != "" {
		e.err = errors.New(ev.Error)
	}
	if len(ev.Result) > 0 && e.result == nil {
		e.result = append([]byte(nil), ev.Result...)
	}
	r.finishLocked(id, e, ev.Type != events.TypeFailed)
}

// watchPoll is the synthetic-event fallback: the job's status is polled on
// WatchPollInterval and every observed change is emitted as an event. The
// first emission is a snapshot — the deltas between the stream cut and now
// are unrecoverable — and sequence numbers continue after lastSeq.
func (r *Remote) watchPoll(ctx context.Context, id string, lastSeq uint64, ch chan<- events.Event) {
	seq := lastSeq
	first := true
	var lastState jobs.State
	var lastStage string
	t := time.NewTicker(r.cfg.WatchPollInterval)
	defer t.Stop()
	for {
		st, err := r.Status(id)
		if err != nil {
			// The node forgot the id (TTL) or the record was swept: the
			// stream ends with an eviction event.
			seq++
			send(ctx, ch, events.Event{Seq: seq, Type: events.TypeEvicted, JobID: id, At: r.clock()})
			return
		}
		if first || st.State != lastState || st.Stage != lastStage {
			seq++
			ev := events.Event{Seq: seq, JobID: id, At: r.clock(), State: string(st.State), Stage: st.Stage, Error: st.Err}
			switch {
			case first:
				ev.Type = events.TypeSnapshot
			case st.State == jobs.StateDone:
				ev.Type = events.TypeDone
			case st.State == jobs.StateFailed:
				ev.Type = events.TypeFailed
			case st.Stage != "":
				ev.Type = events.TypeStage
			case st.State == jobs.StateRunning:
				ev.Type = events.TypeRunning
			default:
				ev.Type = events.TypeQueued
			}
			if !send(ctx, ch, ev) {
				return
			}
			if ev.Terminal() {
				return
			}
			first, lastState, lastStage = false, st.State, st.Stage
		}
		select {
		case <-ctx.Done():
			return
		case <-r.stop:
			return
		case <-t.C:
		}
	}
}

// send delivers one event unless the context ends first.
func send(ctx context.Context, ch chan<- events.Event, e events.Event) bool {
	select {
	case ch <- e:
		return true
	case <-ctx.Done():
		return false
	}
}
