package dispatch

import (
	"testing"

	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// TestFitProfileSeparatesRingPlacement pins the routing half of the fit
// profile contract: the same clip submitted under the default and fast
// profiles must key onto the consistent-hash circle independently. If the
// placements coincided, a resubmission under the other profile would land
// on the node whose result cache holds the first profile's poses — and the
// cache keys differing (payload_test in internal/jobs) would be the only
// line of defence.
func TestFitProfileSeparatesRingPlacement(t *testing.T) {
	params := synth.DefaultJumpParams()
	params.Frames = 4
	v, err := synth.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	req := core.Request{
		Frames:      v.Frames,
		ManualFirst: v.ManualAnnotation(synth.DefaultAnnotationError(), 1),
	}
	payload := func(cfg core.Config) jobs.Payload {
		p, err := jobs.NewAnalysisPayload(jobs.ConfigFingerprint(cfg), req)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	defCfg := core.DefaultConfig()
	fastCfg := core.DefaultConfig()
	fastCfg.Pose.Profile = pose.FastProfile()

	var r Remote
	defHash := r.placementHash(payload(defCfg))
	fastHash := r.placementHash(payload(fastCfg))
	if defHash == fastHash {
		t.Fatal("default and fast submissions of the same clip share a ring key")
	}

	// On a deployment-sized ring the two keys walk distinct failover
	// orders (deterministic: the ring and both hashes are content-derived).
	urls := []string{"http://a", "http://b", "http://c", "http://d"}
	rg := buildRing(urls, 64)
	defOrder := rg.walk(defHash)
	fastOrder := rg.walk(fastHash)
	same := len(defOrder) == len(fastOrder)
	if same {
		for i := range defOrder {
			if defOrder[i] != fastOrder[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Errorf("profiles walk identical node order %v; placements did not separate", defOrder)
	}
}
