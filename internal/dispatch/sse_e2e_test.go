package dispatch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/dispatch"
	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/events"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// readStream collects SSE events from url (resuming after afterSeq when
// > 0) until the terminal event, returning them in arrival order.
func readStream(t *testing.T, url string, afterSeq uint64) []events.Event {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if afterSeq > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", afterSeq))
	}
	client := &http.Client{}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, raw)
	}
	fr := events.NewFrameReader(resp.Body)
	var out []events.Event
	for {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("stream cut before terminal: %v (saw %d events)", err, len(out))
		}
		e, err := f.DecodeEvent()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
		if e.Terminal() {
			return out
		}
	}
}

// TestDispatchSSEStreamAndResume is the PR's acceptance test: a client
// streaming a job's events through a two-node dispatch ring front end
// receives ordered lifecycle + per-stage events and a terminal event
// whose embedded result is identical (modulo the shared indentation) to
// GET /v1/jobs/{id}/result — and after a dropped connection, resuming
// with Last-Event-ID yields exactly the missed tail with contiguous
// sequence numbers.
func TestDispatchSSEStreamAndResume(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := newNode(t)
	n2, _ := newNode(t)
	front := newFrontend(t, []string{n1.URL, n2.URL})

	doc, raw, code := e2etest.Submit(t, front.URL, v, "segmentation", true)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}

	got := readStream(t, front.URL+"/v1/jobs/"+doc.ID+"/events", 0)
	if len(got) < 3 {
		t.Fatalf("expected at least queued/stage/done, got %+v", got)
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d: seq %d, want %d (the worker's numbering must survive the proxy)", i, e.Seq, i+1)
		}
		if e.JobID != doc.ID {
			t.Errorf("event %d carries job %q", i, e.JobID)
		}
	}
	if got[0].Type != events.TypeQueued {
		t.Errorf("first event %s, want queued", got[0].Type)
	}
	sawStage := false
	for _, e := range got {
		if e.Type == events.TypeStage && e.Stage == "segmentation" {
			sawStage = true
		}
	}
	if !sawStage {
		t.Error("no segmentation stage event in the stream")
	}
	terminal := got[len(got)-1]
	if terminal.Type != events.TypeDone || len(terminal.Result) == 0 {
		t.Fatalf("terminal event: %+v", terminal)
	}

	// The embedded result is the result route's document.
	resp, err := http.Get(front.URL + "/v1/jobs/" + doc.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	pollRaw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, pollRaw)
	}
	var indented bytes.Buffer
	if err := json.Indent(&indented, terminal.Result, "", "  "); err != nil {
		t.Fatalf("embedded result is not JSON: %v", err)
	}
	indented.WriteByte('\n')
	if !bytes.Equal(indented.Bytes(), pollRaw) {
		t.Errorf("embedded result differs from the poll path:\n%s\nvs\n%s", indented.Bytes(), pollRaw)
	}

	// Dropped connection: resume after the second event and receive
	// exactly the tail.
	resumeAfter := got[1].Seq
	tail := readStream(t, front.URL+"/v1/jobs/"+doc.ID+"/events", resumeAfter)
	if len(tail) != len(got)-2 {
		t.Fatalf("resumed tail has %d events, want %d", len(tail), len(got)-2)
	}
	for i, e := range tail {
		if e.Seq != resumeAfter+uint64(i+1) {
			t.Errorf("resumed event %d: seq %d, want %d", i, e.Seq, resumeAfter+uint64(i+1))
		}
		if e.Type != got[i+2].Type {
			t.Errorf("resumed event %d: type %s, want %s", i, e.Type, got[i+2].Type)
		}
	}
	if last := tail[len(tail)-1]; last.Type != events.TypeDone || len(last.Result) == 0 {
		t.Errorf("resumed terminal event: %+v", last)
	}
}

// TestDispatchCacheHitStreamsImmediateTerminal: a submission answered
// from a worker's result cache is born done — its event stream must open
// directly onto a terminal event carrying the result.
func TestDispatchCacheHitStreamsImmediateTerminal(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := newNode(t)
	n2, _ := newNode(t)
	front := newFrontend(t, []string{n1.URL, n2.URL})

	first := submitAndFetch(t, front.URL, v) // cold run, populates the node cache

	doc, raw, code := e2etest.Submit(t, front.URL, v, "segmentation", true)
	if code != http.StatusAccepted {
		// The front end's own local record may answer 200 directly; the
		// interesting path here is a fresh 202 id born done. Either way
		// the result matches.
		if code == http.StatusOK && bytes.Equal(raw, first) {
			t.Skip("submission answered inline; no job id to stream")
		}
		t.Fatalf("resubmission status %d: %s", code, raw)
	}
	got := readStream(t, front.URL+"/v1/jobs/"+doc.ID+"/events", 0)
	if got[len(got)-1].Type != events.TypeDone {
		t.Fatalf("cache-hit stream: %+v", got)
	}
	if len(got[len(got)-1].Result) == 0 {
		t.Error("cache-hit terminal event carries no result")
	}
}

// fallbackWorker is a minimal worker-protocol stub WITHOUT the events
// route: submissions are accepted, status advances queued → running →
// done across polls, and the stream route 404s — forcing the dispatcher
// onto its polling-backed synthetic events.
type fallbackWorker struct {
	mu    sync.Mutex
	polls int
}

func (f *fallbackWorker) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/v1/worker/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintln(w, `{"id":"fallback1","state":"queued"}`)
	})
	mux.HandleFunc("/v1/jobs/fallback1/events", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no streaming here"}`, http.StatusNotFound)
	})
	mux.HandleFunc("/v1/jobs/fallback1/result", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"frames":20}`)
	})
	mux.HandleFunc("/v1/jobs/fallback1", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.polls++
		n := f.polls
		f.mu.Unlock()
		now := time.Now().UTC().Format(time.RFC3339Nano)
		switch {
		case n <= 1:
			fmt.Fprintf(w, `{"id":"fallback1","state":"queued","created_at":%q}`, now)
		case n <= 3:
			fmt.Fprintf(w, `{"id":"fallback1","state":"running","stage":"pose","created_at":%q}`, now)
		default:
			fmt.Fprintf(w, `{"id":"fallback1","state":"done","created_at":%q,"finished_at":%q}`, now, now)
		}
	})
	return mux
}

// TestWatchFallsBackToPolling: when the owning node cannot stream, Watch
// degrades to synthetic events — opening with a snapshot, ending with the
// terminal — without the client noticing anything but coarser granularity.
func TestWatchFallsBackToPolling(t *testing.T) {
	fw := &fallbackWorker{}
	node := httptest.NewServer(fw.handler())
	defer node.Close()

	d, err := dispatch.New(dispatch.Config{
		Nodes:             []string{node.URL},
		HealthInterval:    time.Hour, // keep the prober out of the poll count
		WatchPollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	payload, err := jobs.NewAnalysisPayload(jobs.ConfigFingerprint(cfg), core.Request{
		Frames:      v.Frames,
		ManualFirst: v.ManualAnnotation(synth.DefaultAnnotationError(), 1),
		Stages:      core.OnlyStage(core.StageSegmentation),
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Submit(payload)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ch, err := d.Watch(ctx, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []events.Event
	for e := range ch {
		got = append(got, e)
	}
	if len(got) < 2 {
		t.Fatalf("fallback stream too short: %+v", got)
	}
	if got[0].Type != events.TypeSnapshot {
		t.Errorf("fallback must open with a snapshot, got %+v", got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Errorf("fallback seqs not contiguous: %d after %d", got[i].Seq, got[i-1].Seq)
		}
	}
	last := got[len(got)-1]
	if last.Type != events.TypeDone {
		t.Errorf("fallback terminal: %+v", last)
	}
	sawStage := false
	for _, e := range got {
		if e.Stage == "pose" {
			sawStage = true
		}
	}
	if !sawStage {
		t.Errorf("fallback missed the running/stage observation: %+v", got)
	}
}
