package dispatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/sljmotion/sljmotion/internal/jobs"
)

// Replicator pushes cache fills and artifact blobs to ring successors. It
// is the worker-side half of successor replication: the server's cache and
// artifact stores invoke it (through the jobs.ReplicaSink seam) whenever
// they store something for a job whose payload named a replica target, and
// it mirrors the bytes there over HTTP from a bounded background queue —
// the job's own latency never waits on replication, and a slow or dead
// successor only costs dropped replicas, never wedged workers.
type Replicator struct {
	client *http.Client
	ch     chan replicaTask
	stop   chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	seen     map[string]struct{} // target|hash pairs already pushed (artifact dedup)
	seenList []string            // FIFO of seen keys, bounds the dedup set
	metrics  jobs.ReplicaMetrics
}

// replicaTask is one queued push.
type replicaTask struct {
	artifact bool
	target   string
	key      string // cache key (results) or content hash (artifacts)
	body     []byte
}

// replicaQueue bounds the push backlog; beyond it, replicas are dropped
// (and counted) rather than blocking the pipeline.
const replicaQueue = 256

// replicaSeenCap bounds the artifact dedup memory.
const replicaSeenCap = 4096

// Replicator is a ReplicaSink.
var _ jobs.ReplicaSink = (*Replicator)(nil)

// NewReplicator starts the push worker. A nil client gets a 30s-timeout
// default.
func NewReplicator(client *http.Client) *Replicator {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	p := &Replicator{
		client: client,
		ch:     make(chan replicaTask, replicaQueue),
		stop:   make(chan struct{}),
		seen:   make(map[string]struct{}),
	}
	p.wg.Add(1)
	go p.run()
	return p
}

// ReplicateResult mirrors a marshaled response document under its cache key
// (jobs.ReplicaSink). Never blocks: a full queue drops the push.
func (p *Replicator) ReplicateResult(target, key string, doc []byte) {
	p.enqueue(replicaTask{target: target, key: key, body: doc})
}

// ReplicateArtifact mirrors an artifact blob (jobs.ReplicaSink). Pushes of
// a hash already sent to the same target are deduplicated — artifacts are
// content-addressed, so one successful push is permanent.
func (p *Replicator) ReplicateArtifact(target, hash string, blob []byte) {
	k := target + "|" + hash
	p.mu.Lock()
	if _, dup := p.seen[k]; dup {
		p.mu.Unlock()
		return
	}
	p.seen[k] = struct{}{}
	p.seenList = append(p.seenList, k)
	if len(p.seenList) > replicaSeenCap {
		delete(p.seen, p.seenList[0])
		p.seenList = p.seenList[1:]
	}
	p.mu.Unlock()
	p.enqueue(replicaTask{artifact: true, target: target, key: hash, body: blob})
}

// ReplicaMetrics reports push counters (jobs.ReplicaSink).
func (p *Replicator) ReplicaMetrics() jobs.ReplicaMetrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.metrics
}

// Backlog reports the push queue's current depth and capacity — the
// replication-backlog signal behind the deep-health watchdog: a queue
// sitting near capacity means replicas are about to be dropped.
func (p *Replicator) Backlog() (depth, capacity int) {
	return len(p.ch), cap(p.ch)
}

// Close stops the push worker after draining already-queued tasks.
func (p *Replicator) Close() {
	close(p.stop)
	p.wg.Wait()
}

func (p *Replicator) enqueue(t replicaTask) {
	if t.target == "" || len(t.body) == 0 {
		return
	}
	select {
	case p.ch <- t:
	default:
		p.mu.Lock()
		p.metrics.Dropped++
		p.mu.Unlock()
	}
}

func (p *Replicator) run() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.ch:
			p.push(t)
		case <-p.stop:
			// Drain what was queued before Close; new enqueues may still
			// race in, but the channel read below empties the buffer.
			for {
				select {
				case t := <-p.ch:
					p.push(t)
				default:
					return
				}
			}
		}
	}
}

// push performs one replication POST. Results go to the successor's replica
// intake; artifacts to its regular content-addressed PUT route (the hash is
// verified there, so a corrupt push cannot poison the successor).
func (p *Replicator) push(t replicaTask) {
	var err error
	if t.artifact {
		err = p.pushArtifact(t)
	} else {
		err = p.pushResult(t)
	}
	p.mu.Lock()
	if err != nil {
		p.metrics.Failures++
	} else if t.artifact {
		p.metrics.Artifacts++
	} else {
		p.metrics.Results++
	}
	p.mu.Unlock()
}

func (p *Replicator) pushResult(t replicaTask) error {
	doc, err := json.Marshal(struct {
		Key      string          `json:"key"`
		Response json.RawMessage `json:"response"`
	}{Key: t.key, Response: t.body})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, t.target+"/v1/worker/replica", bytes.NewReader(doc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return p.do(req, http.StatusNoContent)
}

func (p *Replicator) pushArtifact(t replicaTask) error {
	req, err := http.NewRequest(http.MethodPost, t.target+"/v1/artifacts", bytes.NewReader(t.body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(replicaHeader, "1")
	return p.do(req, http.StatusCreated)
}

func (p *Replicator) do(req *http.Request, want int) error {
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	// 200 vs 201 on artifact re-PUT (already stored) are both success.
	if resp.StatusCode != want && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica push: %s answered %d", req.URL.Host, resp.StatusCode)
	}
	return nil
}

// replicaHeader marks an HTTP request as a successor-replication push, so
// receiving servers can count replica traffic apart from client traffic.
const replicaHeader = "X-SLJ-Replica"
