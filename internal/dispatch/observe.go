// Fleet-wide observability: the dispatcher's half of the metrics
// federation, SLO tracking and deep-health planes. Each health cycle the
// dispatcher scrapes every member's Prometheus exposition alongside the
// liveness probe; the merged, node-labelled view is served through the
// jobs.MetricsFederator seam at GET /v1/fleet/metrics. ComponentHealth
// contributes the fleet-routability and drain-stuck watchdogs to the
// deep-health document.
package dispatch

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/obs"
)

// Remote federates member metrics and reports component health.
var (
	_ jobs.MetricsFederator = (*Remote)(nil)
	_ jobs.HealthReporter   = (*Remote)(nil)
)

// DefaultDrainStuckAfter is the drain-stuck threshold when
// Config.DrainStuckAfter is zero: a draining node whose pending count has
// not moved for this long degrades the "drain" health component.
const DefaultDrainStuckAfter = 5 * time.Minute

// scrapeBodyLimit bounds one member's exposition read.
const scrapeBodyLimit = 4 << 20

// memberScrape is one node's cached exposition (or scrape failure).
type memberScrape struct {
	raw []byte
	err error
}

// SetSLO wires the shared SLI store into the dispatcher: finishLocked
// observes every terminal job's submit→terminal round trip against it.
// Safe to call once, before or after traffic starts; nil detaches.
func (r *Remote) SetSLO(s *obs.SLO) {
	r.mu.Lock()
	r.slo = s
	r.mu.Unlock()
}

// scrapeAll pulls every current member's Prometheus exposition, rebuilding
// the federation cache in one sweep — removed members drop out of the
// merged view at the next sweep. Runs on the health-probe cadence; HTTP
// happens outside both locks.
func (r *Remote) scrapeAll() {
	r.mu.Lock()
	urls := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		urls = append(urls, n.url)
	}
	r.mu.Unlock()

	fresh := make(map[string]memberScrape, len(urls))
	var freshMu sync.Mutex
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			s := r.scrapeOne(u)
			freshMu.Lock()
			fresh[u] = s
			freshMu.Unlock()
		}(u)
	}
	wg.Wait()

	failed := uint64(0)
	for _, s := range fresh {
		if s.err != nil {
			failed++
		}
	}
	r.scrapeMu.Lock()
	r.scrapes = fresh
	r.scrapeFailures += failed
	r.lastScrape = r.clock()
	r.scrapeMu.Unlock()
}

// scrapeOne fetches one member's exposition.
func (r *Remote) scrapeOne(url string) memberScrape {
	resp, err := r.client.Get(url + "/v1/metrics?format=prometheus")
	if err != nil {
		return memberScrape{err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, scrapeBodyLimit))
	if err != nil {
		return memberScrape{err: err}
	}
	if resp.StatusCode != 200 {
		return memberScrape{err: fmt.Errorf("metrics status %d", resp.StatusCode)}
	}
	return memberScrape{raw: raw}
}

// FederatedMetrics merges the cached member expositions into one
// node-labelled cluster exposition (jobs.MetricsFederator). A cache that
// has never been filled or has outlived two health intervals is refreshed
// synchronously, so federation works before the first health tick and
// under test configurations whose health loop never fires.
func (r *Remote) FederatedMetrics() ([]byte, jobs.FederationStats, error) {
	r.scrapeMu.Lock()
	stale := r.scrapes == nil || r.clock().Sub(r.lastScrape) > 2*r.cfg.HealthInterval
	r.scrapeMu.Unlock()
	if stale {
		r.scrapeAll()
	}

	r.scrapeMu.Lock()
	nodes := make([]obs.ScrapedNode, 0, len(r.scrapes))
	stats := jobs.FederationStats{ScrapeFailures: r.scrapeFailures}
	if !r.lastScrape.IsZero() {
		stats.LastScrapeUnixMS = r.lastScrape.UnixMilli()
	}
	for u, s := range r.scrapes {
		nodes = append(nodes, obs.ScrapedNode{Node: u, Exposition: s.raw, Err: s.err})
		if s.err == nil {
			stats.NodesScraped++
		}
	}
	r.scrapeMu.Unlock()

	merged, err := obs.MergeExpositions(nodes)
	if err != nil {
		return nil, stats, fmt.Errorf("dispatch: federate metrics: %w", err)
	}
	return merged, stats, nil
}

// FederationStats reports the scrape bookkeeping from the cache alone —
// the /v1/fleet rollup reads it, and listing the fleet must never trigger
// a scrape sweep.
func (r *Remote) FederationStats() jobs.FederationStats {
	r.scrapeMu.Lock()
	defer r.scrapeMu.Unlock()
	stats := jobs.FederationStats{ScrapeFailures: r.scrapeFailures}
	if !r.lastScrape.IsZero() {
		stats.LastScrapeUnixMS = r.lastScrape.UnixMilli()
	}
	for _, s := range r.scrapes {
		if s.err == nil {
			stats.NodesScraped++
		}
	}
	return stats
}

// ComponentHealth contributes the dispatcher's watchdogs to the
// deep-health document (jobs.HealthReporter):
//
//   - "dispatch" degrades when no healthy routable node remains — every
//     submission would fail with ErrQueueFull;
//   - "drain" degrades when a draining node's pending count has not moved
//     for DrainStuckAfter — the signature of a drain wedged behind a job
//     that will never finish.
//
// Both verdicts keep the HTTP healthz status 200: a degraded front end is
// alive, and the fleet's own probers must not mistake it for dead.
func (r *Remote) ComponentHealth() map[string]jobs.ComponentHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()

	routable, healthy := 0, 0
	for _, n := range r.nodes {
		if n.draining {
			continue
		}
		routable++
		if n.healthy {
			healthy++
		}
	}
	disp := jobs.HealthOKComponent()
	switch {
	case routable == 0:
		disp = jobs.HealthDegradedComponent("no routable worker nodes: fleet is empty or fully draining")
	case healthy == 0:
		disp = jobs.HealthDegradedComponent("no healthy worker nodes: all %d routable member(s) unreachable", routable)
	}

	drain := jobs.HealthOKComponent()
	for _, n := range r.nodes {
		if !n.draining {
			continue
		}
		p := r.pendingLocked(n)
		if p != n.drainPending {
			n.drainPending = p
			n.drainChanged = now
			continue
		}
		if p > 0 && !n.drainChanged.IsZero() && now.Sub(n.drainChanged) > r.cfg.DrainStuckAfter {
			drain = jobs.HealthDegradedComponent(
				"drain stuck: %s has held %d pending job(s) for %s (threshold %s)",
				n.url, p, now.Sub(n.drainChanged).Round(time.Millisecond), r.cfg.DrainStuckAfter)
		}
	}
	return map[string]jobs.ComponentHealth{"dispatch": disp, "drain": drain}
}
