package dispatch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/artifacts"
	"github.com/sljmotion/sljmotion/internal/dispatch"
	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/server"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// newArtifactFrontend starts a fan-out front end whose dispatcher stamps
// its own public URL as the artifact origin, so worker nodes can pull
// referenced blobs back from it. The URL is only known once the httptest
// listener exists, so the handler is bound through an indirection.
func newArtifactFrontend(t *testing.T, nodes []string) *httptest.Server {
	t.Helper()
	var handler http.Handler
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.ServeHTTP(w, r)
	}))
	d, err := dispatch.New(dispatch.Config{
		Nodes:          nodes,
		HealthInterval: 50 * time.Millisecond,
		ArtifactOrigin: hs.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.NewWithOptions(testConfig(), nil, server.Options{
		CacheEntries: 0, // dispatch every job; worker caches answer repeats
		Dispatcher:   d,
	})
	if err != nil {
		t.Fatal(err)
	}
	handler = s.Handler()
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return hs
}

// ingestClip streams the clip into an ingest session on base and seals it,
// returning the seal document.
func ingestClip(t *testing.T, base string, frames []*imaging.Image) artifacts.SealDoc {
	t.Helper()
	resp, err := http.Post(base+"/v1/clips", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open clip: %d %s", resp.StatusCode, raw)
	}
	var open struct {
		ClipID string `json:"clip_id"`
	}
	if err := json.Unmarshal(raw, &open); err != nil || open.ClipID == "" {
		t.Fatalf("open clip: malformed document: %s", raw)
	}

	chunkSize := (len(frames) + 2) / 3
	for i, chunk := 0, 0; i < len(frames); chunk++ {
		end := i + chunkSize
		if end > len(frames) {
			end = len(frames)
		}
		var body bytes.Buffer
		mw := multipart.NewWriter(&body)
		if err := mw.WriteField("chunk", strconv.Itoa(chunk)); err != nil {
			t.Fatal(err)
		}
		for k, f := range frames[i:end] {
			fw, err := mw.CreateFormFile("frames", fmt.Sprintf("frame_%04d.ppm", k))
			if err != nil {
				t.Fatal(err)
			}
			if err := imaging.EncodePPM(fw, f); err != nil {
				t.Fatal(err)
			}
		}
		mw.Close()
		req, err := http.NewRequest(http.MethodPut, base+"/v1/clips/"+open.ClipID+"/frames", &body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", mw.FormDataContentType())
		cr, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		craw, _ := io.ReadAll(cr.Body)
		cr.Body.Close()
		if cr.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d: %d %s", chunk, cr.StatusCode, craw)
		}
		i = end
	}

	sr, err := http.Post(base+"/v1/clips/"+open.ClipID+"/seal", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	sraw, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK {
		t.Fatalf("seal: %d %s", sr.StatusCode, sraw)
	}
	var seal artifacts.SealDoc
	if err := json.Unmarshal(sraw, &seal); err != nil {
		t.Fatal(err)
	}
	return seal
}

// submitByHash submits a by-reference job and polls it to the result bytes.
func submitByHash(t *testing.T, base, framesHash string, manual stickmodel.Pose) []byte {
	t.Helper()
	doc := map[string]any{
		"frames_ref":   framesHash,
		"manual_first": map[string]any{"x": manual.X, "y": manual.Y, "rho": manual.Rho[:]},
		"stages":       "segmentation",
		"silhouettes":  true,
	}
	body, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return raw // answered from a cache
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("by-hash submit: %d %s", resp.StatusCode, raw)
	}
	var sub e2etest.SubmitDoc
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatalf("malformed submit document: %s", raw)
	}
	return e2etest.PollResult(t, base, sub.ResultURL, 30*time.Second)
}

// artifactMetricsOf fetches a node's artifact-store metrics.
func artifactMetricsOf(t *testing.T, base string) artifacts.Metrics {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Artifacts artifacts.Metrics `json:"artifacts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Artifacts
}

// quantManual rounds a pose to what a %.2f truth-file round trip yields, so
// the by-hash JSON request carries the exact manual pose the inline
// multipart reference upload does.
func quantManual(t *testing.T, m stickmodel.Pose) stickmodel.Pose {
	t.Helper()
	q := func(f float64) float64 {
		p, err := strconv.ParseFloat(fmt.Sprintf("%.2f", f), 64)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	m.X, m.Y = q(m.X), q(m.Y)
	for i := range m.Rho {
		m.Rho[i] = q(m.Rho[i])
	}
	return m
}

// TestByHashDispatchWorkerPull is the two-node acceptance test of the
// artifact flow: a clip ingested on the front end and submitted by content
// hash dispatches as a thin payload; the worker that receives it pulls the
// frames artifact back from the front end exactly once, caches it, and
// produces a result byte-identical to the inline upload path. A
// resubmission is answered from the worker's result cache without a second
// pull.
func TestByHashDispatchWorkerPull(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := quantManual(t, v.ManualAnnotation(synth.DefaultAnnotationError(), 1))

	// In-process inline reference.
	ref, err := server.NewWithOptions(testConfig(), nil, server.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	refSrv := httptest.NewServer(ref.Handler())
	defer func() {
		refSrv.Close()
		_ = ref.Close(context.Background())
	}()
	want := e2etest.SubmitAndFetch(t, refSrv.URL, v)

	n1, _ := newNode(t)
	n2, _ := newNode(t)
	front := newArtifactFrontend(t, []string{n1.URL, n2.URL})

	seal := ingestClip(t, front.URL, v.Frames)
	got := submitByHash(t, front.URL, seal.FramesHash, manual)
	if !bytes.Equal(e2etest.StripVolatile(t, got), e2etest.StripVolatile(t, want)) {
		t.Fatalf("by-hash dispatched result differs from the inline path:\n%s\nvs\n%s", got, want)
	}

	// Exactly one node ran the clip, and that node pulled the frames
	// artifact from the front end exactly once.
	c1, _, _ := metricsOf(t, n1.URL)
	c2, _, _ := metricsOf(t, n2.URL)
	if c1+c2 != 1 {
		t.Fatalf("clips analyzed across nodes = %d+%d, want 1", c1, c2)
	}
	ownerURL := n1.URL
	if c2 == 1 {
		ownerURL = n2.URL
	}
	am := artifactMetricsOf(t, ownerURL)
	if am.Pulls != 1 || am.PullFailures != 0 {
		t.Fatalf("owner artifact metrics = %+v, want exactly one successful pull", am)
	}
	if am.Blobs < 1 {
		t.Fatalf("owner artifact metrics = %+v, want the pulled blob cached locally", am)
	}

	// Resubmit: the worker answers from its result cache; its local artifact
	// copy means no second pull either way.
	again := submitByHash(t, front.URL, seal.FramesHash, manual)
	if !bytes.Equal(e2etest.StripVolatile(t, again), e2etest.StripVolatile(t, want)) {
		t.Fatalf("resubmitted by-hash result differs:\n%s\nvs\n%s", again, want)
	}
	c1b, _, _ := metricsOf(t, n1.URL)
	c2b, _, _ := metricsOf(t, n2.URL)
	if c1b+c2b != 1 {
		t.Errorf("resubmission re-ran the pipeline: clips = %d+%d, want 1", c1b, c2b)
	}
	if am := artifactMetricsOf(t, ownerURL); am.Pulls != 1 {
		t.Errorf("owner pulled %d times after resubmission, want still 1", am.Pulls)
	}
}
