package dispatch

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringPoint is one virtual node on the consistent-hash circle.
type ringPoint struct {
	point uint64
	node  int // index into Remote.nodes
}

// ring is a consistent-hash circle over a set of nodes. Each node owns
// Replicas×weight virtual points (hashes of "url#i"), so keys spread
// evenly and the death of one node only moves its own keys — every other
// clip keeps hitting the node whose result cache already holds it. A built
// circle is immutable; membership changes build a fresh circle (a new view
// epoch) while in-flight submits keep the one they started with. Health is
// applied at lookup time by skipping dead nodes clockwise, which is exactly
// the failover re-hash: a dead node's keys fall to its ring successors.
type ring struct {
	points []ringPoint
}

// buildRing hashes every node onto the circle with weight 1 each.
func buildRing(urls []string, replicas int) ring {
	return buildWeightedRing(urls, nil, replicas)
}

// buildWeightedRing hashes every node onto the circle with replicas×weight
// virtual points. A nil weights slice (or a non-positive entry) means weight
// 1. Point i of a node hashes "url#i" regardless of weight, so growing a
// node's weight only ADDS points — its existing points, and every other
// node's, stay fixed, which bounds key movement across membership epochs to
// the share owned by the points that appeared or vanished.
func buildWeightedRing(urls []string, weights []int, replicas int) ring {
	pts := make([]ringPoint, 0, len(urls)*replicas)
	for n, u := range urls {
		w := 1
		if n < len(weights) && weights[n] > 0 {
			w = weights[n]
		}
		for i := 0; i < replicas*w; i++ {
			pts = append(pts, ringPoint{point: hashString(u + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].point < pts[j].point })
	return ring{points: pts}
}

// walk returns the node indices owning key, in failover order: the first
// entry is the primary (first point clockwise from the key), followed by
// each remaining distinct node in the order its points appear. Callers try
// them in order, skipping unhealthy ones.
func (r ring) walk(key uint64) []int {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= key })
	order := make([]int, 0, 4)
	seen := make(map[int]bool)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			order = append(order, p.node)
		}
	}
	return order
}

// hashString maps a string onto the ring coordinate space.
func hashString(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
