package dispatch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/cache"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/dispatch"
	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/server"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// testConfig is the shared analyzer configuration: every node and the
// reference server must agree so cache keys line up fleet-wide.
func testConfig() core.Config { return e2etest.Config() }

// newNode starts one worker node (payload intake enabled) on httptest.
func newNode(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	opts := server.DefaultOptions()
	opts.Worker = true
	s, err := server.NewWithOptions(testConfig(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return hs, s
}

// newFrontend starts the fan-out front end over the given worker URLs. Its
// own result cache is disabled so resubmissions exercise the dispatcher
// (and the worker-side caches) instead of being absorbed locally.
func newFrontend(t *testing.T, nodes []string) *httptest.Server {
	t.Helper()
	d, err := dispatch.New(dispatch.Config{
		Nodes:          nodes,
		HealthInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.NewWithOptions(testConfig(), nil, server.Options{
		CacheEntries: 0, // dispatch every job; worker caches answer repeats
		Dispatcher:   d,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return hs
}

// clipUpload builds the canonical segmentation-only multipart upload (fast:
// no GA) for the given synthetic clip.
func clipUpload(t *testing.T, v *synth.Video) (*bytes.Buffer, string) {
	return e2etest.ClipUpload(t, v, "segmentation", true)
}

// submitAndFetch posts the clip to base's async route and polls it to the
// final result bytes. A 200 on submit (cache-answered) returns immediately.
func submitAndFetch(t *testing.T, base string, v *synth.Video) []byte {
	return e2etest.SubmitAndFetch(t, base, v)
}

// metricsOf fetches a server's /v1/metrics document.
func metricsOf(t *testing.T, base string) (clips int, jm jobs.Metrics, cm cache.Metrics) {
	return e2etest.MetricsOf(t, base)
}

// TestTwoWorkerEndToEnd is the acceptance test of the remote dispatcher: a
// clip submitted through the two-node fan-out front end returns a result
// byte-identical to the in-process Manager path, and a resubmission of the
// same clip hash-routes to the same node and is answered from that node's
// result cache without re-running the pipeline.
func TestTwoWorkerEndToEnd(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}

	// In-process reference: the same server stack backed by the Manager.
	ref, err := server.NewWithOptions(testConfig(), nil, server.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	refSrv := httptest.NewServer(ref.Handler())
	defer func() {
		refSrv.Close()
		_ = ref.Close(context.Background())
	}()
	want := submitAndFetch(t, refSrv.URL, v)

	// Two worker nodes + the fan-out front end.
	n1, _ := newNode(t)
	n2, _ := newNode(t)
	front := newFrontend(t, []string{n1.URL, n2.URL})

	got := submitAndFetch(t, front.URL, v)
	if !bytes.Equal(e2etest.StripVolatile(t, got), e2etest.StripVolatile(t, want)) {
		t.Fatalf("remote result differs from the in-process Manager path:\n%s\nvs\n%s", got, want)
	}

	// Exactly one node ran the pipeline.
	c1, _, _ := metricsOf(t, n1.URL)
	c2, _, _ := metricsOf(t, n2.URL)
	if c1+c2 != 1 {
		t.Fatalf("clips analyzed across nodes = %d+%d, want 1", c1, c2)
	}

	// Resubmission: same key → same node → answered from its cache.
	again := submitAndFetch(t, front.URL, v)
	if !bytes.Equal(e2etest.StripVolatile(t, again), e2etest.StripVolatile(t, want)) {
		t.Fatalf("cached remote result differs:\n%s\nvs\n%s", again, want)
	}
	c1b, _, _ := metricsOf(t, n1.URL)
	c2b, _, _ := metricsOf(t, n2.URL)
	if c1b+c2b != 1 {
		t.Errorf("resubmission re-ran the pipeline: clips = %d+%d, want 1", c1b, c2b)
	}

	// The front end's merged metrics show the hit on exactly the node that
	// ran the job the first time.
	_, fm, _ := metricsOf(t, front.URL)
	if len(fm.Nodes) != 2 {
		t.Fatalf("front metrics carry %d nodes, want 2", len(fm.Nodes))
	}
	var hits, submitted uint64
	for _, n := range fm.Nodes {
		hits += n.CacheHits
		submitted += n.Submitted
		if n.CacheHits > 0 && n.Submitted < 2 {
			t.Errorf("cache hit reported on a node that never saw the clip: %+v", n)
		}
	}
	if hits != 1 {
		t.Errorf("fleet cache hits = %d, want 1", hits)
	}
	if submitted != 2 || fm.Completed != 2 {
		t.Errorf("fleet counters: submitted=%d completed=%d, want 2/2", submitted, fm.Completed)
	}
}

// TestNodeKillFailover kills the node that owns a clip mid-test and
// expects the resubmitted clip to re-hash onto the surviving node and
// complete, while the front end keeps serving.
func TestNodeKillFailover(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := newNode(t)
	n2, _ := newNode(t)
	front := newFrontend(t, []string{n1.URL, n2.URL})

	first := submitAndFetch(t, front.URL, v)

	// Find and kill the node that ran (and cached) the clip.
	c1, _, _ := metricsOf(t, n1.URL)
	owner, survivorURL := n1, n2.URL
	if c1 == 0 {
		owner, survivorURL = n2, n1.URL
	}
	owner.Close()

	// The same clip now fails over to the survivor and re-runs there —
	// byte-identical output, served end to end through the front end.
	second := submitAndFetch(t, front.URL, v)
	if !bytes.Equal(e2etest.StripVolatile(t, second), e2etest.StripVolatile(t, first)) {
		t.Fatalf("failover result differs:\n%s\nvs\n%s", second, first)
	}
	cs, _, _ := metricsOf(t, survivorURL)
	if cs != 1 {
		t.Errorf("survivor analysed %d clips, want 1", cs)
	}

	// The front end's metrics mark the dead node unhealthy.
	_, fm, _ := metricsOf(t, front.URL)
	healthy := 0
	for _, n := range fm.Nodes {
		if n.Healthy {
			healthy++
		}
	}
	if healthy != 1 {
		t.Errorf("healthy nodes = %d, want 1", healthy)
	}

	// Distinct clips keep flowing through the surviving node.
	params := synth.DefaultJumpParams()
	params.Seed = 7
	v2, err := synth.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	if out := submitAndFetch(t, front.URL, v2); len(out) == 0 {
		t.Error("post-failover submission returned nothing")
	}
}

// TestFrontendBackpressurePropagates: saturated workers surface as 503 +
// Retry-After at the front end.
func TestFrontendBackpressurePropagates(t *testing.T) {
	// A fake "worker" that always answers 503 with a distinctive hint.
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		w.Header().Set("Retry-After", "9")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"jobs: queue full, retry later"}`)
	}))
	defer busy.Close()
	front := newFrontend(t, []string{busy.URL})

	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	body, ctype := clipUpload(t, v)
	resp, err := http.Post(front.URL+"/v1/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "9" {
		t.Errorf("Retry-After = %q, want the worker's 9", got)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == "" {
		t.Errorf("503 body is not the error envelope: %s", raw)
	}
	if _, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil {
		t.Errorf("Retry-After not numeric")
	}
}
