// Package dispatch is the remote HTTP fan-out implementation of the
// jobs.Dispatcher seam: instead of an in-process worker pool, each
// submitted payload is routed to one of N slj-serve worker nodes (started
// with -worker) and executed there, with the submit/poll lifecycle, the
// error contract and the /metrics schema unchanged from the in-process
// Manager.
//
// Routing is a consistent-hash ring keyed on the payload's cache key — the
// same SHA-256 content address the result cache uses — so an identical
// clip always lands on the node that already cached its result and is
// answered without re-running the pipeline. Node health is probed in the
// background; a dead node's keys fall clockwise to its ring successors
// (failover re-hash) while every other key keeps its node and its cache.
//
// Worker protocol (see internal/server's worker intake):
//
//	POST {node}/v1/worker/jobs      the payload as JSON
//	GET  {node}/v1/jobs/{id}        lifecycle polling
//	GET  {node}/v1/jobs/{id}/result the finished response document
//	GET  {node}/v1/healthz          liveness probing
//
// Backpressure propagates end to end: a worker's 503 surfaces as
// jobs.ErrQueueFull with the node's Retry-After carried through
// jobs.RetryAfterHint.
package dispatch

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/sljmotion/sljmotion/internal/events"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/obs"
)

// roundtripSeconds is the submit→terminal round-trip latency histogram of
// dispatched jobs, the bucketed companion of the rtt ring behind
// /metrics. Bucketed histograms merge correctly across dispatch nodes
// where percentile snapshots cannot.
var roundtripSeconds = obs.Default.Histogram("slj_dispatch_roundtrip_seconds",
	"Dispatch submit to observed-terminal round-trip time, in seconds.", obs.DefBuckets)

// Config parameterises a Remote dispatcher.
type Config struct {
	// Nodes are the worker base URLs (e.g. "http://10.0.0.7:8080").
	Nodes []string
	// Client overrides the HTTP client (tests, custom timeouts).
	Client *http.Client
	// HealthInterval is the liveness probe period; dead nodes rejoin the
	// ring at the first probe that succeeds again.
	HealthInterval time.Duration
	// Replicas is the number of virtual ring points per node.
	Replicas int
	// ResultTTL evicts the dispatcher's local job records (node mapping,
	// locally held results) this long after creation, mirroring the
	// Manager's result TTL.
	ResultTTL time.Duration
	// Clock overrides time.Now, a test seam for TTL eviction.
	Clock func() time.Time
	// Events configures the dispatcher's local event hub (zero fields take
	// their defaults). The hub carries the dispatcher's own observations —
	// submissions, cache-hit completions, terminal states resolved by
	// polls — for the global feed; per-job Watch streams are proxied from
	// the owning worker node, not served from this hub.
	Events events.Config
	// WatchPollInterval paces the polling fallback of Watch when the
	// worker's event stream cannot be (re)established.
	WatchPollInterval time.Duration
	// Log receives structured dispatch logs (routing, demotions, terminal
	// observations), correlated by job_id and trace_id. Nil discards.
	Log *slog.Logger
	// ArtifactOrigin is this front end's public base URL (e.g.
	// "http://10.0.0.1:8080"), stamped into by-reference payloads so worker
	// nodes know where to pull artifacts they do not hold. Empty leaves
	// payloads unstamped; workers can then only serve references they have
	// already cached.
	ArtifactOrigin string
	// Replicate turns on successor replication and failover recovery: each
	// payload is stamped with its key's ring successor (the worker mirrors
	// its cache fill and pulled artifacts there), the dispatcher retains the
	// payload until the job is terminal, and a job stranded on a lost node
	// is resubmitted to the next ring candidate — where the replicated
	// cache answers without recomputing. Costs payload retention memory for
	// the lifetime of each in-flight job.
	Replicate bool
	// DrainStuckAfter flips the deep-health "drain" component to degraded
	// when a draining node's pending count has not moved for this long —
	// the drain-stuck watchdog. Zero takes DefaultDrainStuckAfter.
	DrainStuckAfter time.Duration
}

// DefaultConfig returns a small-deployment default.
func DefaultConfig() Config {
	return Config{
		HealthInterval:    2 * time.Second,
		Replicas:          64,
		ResultTTL:         15 * time.Minute,
		WatchPollInterval: 250 * time.Millisecond,
	}
}

// Validate rejects unusable configurations. An empty node list is valid:
// the fleet starts empty and workers join at runtime via JoinNode —
// submissions before the first join fail with jobs.ErrQueueFull.
func (c Config) Validate() error {
	for _, n := range c.Nodes {
		if n == "" {
			return errors.New("dispatch: empty node URL")
		}
	}
	if c.HealthInterval < 0 || c.Replicas < 0 || c.ResultTTL < 0 || c.WatchPollInterval < 0 ||
		c.DrainStuckAfter < 0 {
		return errors.New("dispatch: negative durations/counts")
	}
	return nil
}

// BusyError is a worker node's backpressure answer. It unwraps to
// jobs.ErrQueueFull (so jobs.Retryable reports true) and carries the
// node's Retry-After hint for jobs.RetryAfterHint.
type BusyError struct {
	Node  string
	After int // seconds; 0 = no hint
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("dispatch: worker %s busy: %v", e.Node, jobs.ErrQueueFull)
}

// Unwrap makes the error retryable.
func (e *BusyError) Unwrap() error { return jobs.ErrQueueFull }

// RetryAfterSeconds exposes the propagated Retry-After hint.
func (e *BusyError) RetryAfterSeconds() int { return e.After }

// node is one worker's live state and counters; guarded by Remote.mu. The
// pointer identity is stable across membership epochs — views share node
// pointers with Remote.nodes, so counters and health survive ring rebuilds.
type node struct {
	url      string
	healthy  bool
	weight   int  // ring share multiplier (vnodes = Replicas × weight)
	draining bool // out of the ring; running jobs finishing
	// drainPending/drainChanged track drain progress for the drain-stuck
	// watchdog: the pending count when it last moved, and when that was.
	drainPending int
	drainChanged time.Time
	lastErr      string
	submitted    uint64
	rejected     uint64
	completed    uint64
	failed       uint64
	cacheHits    uint64
}

// entry is the dispatcher's local record of one routed job.
type entry struct {
	node *node
	// workerID is the job's id on its current worker node. It starts equal
	// to the public id and diverges after a failover resubmission: the
	// public id is this dispatcher's stable handle, workerID addresses the
	// node that is actually running the job now.
	workerID string
	// hash is the payload's ring placement, kept for failover re-walks.
	hash     uint64
	created  time.Time
	done     bool      // terminal state observed (counters recorded)
	finished time.Time // when the terminal state was observed
	status   *jobs.Status
	result   json.RawMessage // response document, once known
	err      error           // terminal failure, once known
	// payload is retained until terminal when Config.Replicate is on, so a
	// job stranded on a dead node can be resubmitted to the ring successor.
	payload    *jobs.Payload
	resubmits  int
	recovering bool // a failover resubmission is in flight
	// local marks a job born done from a node's result cache: the id
	// exists only in this dispatcher (the node never enqueued a job), so
	// streams are synthesized locally instead of proxied.
	local bool
	// trace is the dispatcher's span tree for the job (root "dispatch",
	// one "submit" child per node attempt); the worker's own tree is
	// grafted under the successful submit span by Trace. Evicted with the
	// record.
	trace *obs.Trace
	root  *obs.Span
}

// Remote fans payloads out to worker nodes; it implements jobs.Dispatcher.
type Remote struct {
	cfg    Config
	client *http.Client
	// streamClient shares the transport but carries no overall timeout:
	// an event stream legitimately outlives any request deadline.
	streamClient *http.Client
	clock        func() time.Time
	hub          *events.Hub
	log          *slog.Logger

	mu sync.Mutex
	// nodes is the full membership, draining members included; view is the
	// copy-on-write routing snapshot over the routable subset, rebuilt (and
	// epoch-bumped) on every membership mutation.
	nodes     []*node
	view      *view
	epoch     uint64
	failovers uint64
	entries   map[string]*entry
	closed    bool
	evicted   uint64
	lastSweep time.Time
	rtt       []time.Duration // submit→terminal round trips, ring buffer
	rttIdx    int
	// slo, when set (SetSLO), receives one observation per terminal job:
	// the dispatcher's submit→terminal round trip is the client-facing SLI.
	slo *obs.SLO

	// scrapeMu guards the metrics-federation cache, separate from mu so
	// serving the merged exposition never contends with routing.
	scrapeMu       sync.Mutex
	scrapes        map[string]memberScrape
	scrapeFailures uint64
	lastScrape     time.Time

	stop   chan struct{}
	health sync.WaitGroup
}

const rttSample = 256

// Remote is a Dispatcher.
var _ jobs.Dispatcher = (*Remote)(nil)

// New builds a dispatcher over the configured worker pool and starts its
// health prober. Nodes start healthy (optimistically routable) and are
// demoted by the first failed probe or transport error.
func New(cfg Config) (*Remote, error) {
	def := DefaultConfig()
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = def.HealthInterval
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = def.Replicas
	}
	if cfg.ResultTTL == 0 {
		cfg.ResultTTL = def.ResultTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.WatchPollInterval == 0 {
		cfg.WatchPollInterval = def.WatchPollInterval
	}
	if cfg.DrainStuckAfter == 0 {
		cfg.DrainStuckAfter = DefaultDrainStuckAfter
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lg := cfg.Log
	if lg == nil {
		lg = obs.Discard()
	}
	r := &Remote{
		cfg:          cfg,
		client:       cfg.Client,
		streamClient: &http.Client{Transport: cfg.Client.Transport},
		clock:        cfg.Clock,
		hub:          events.NewHub(cfg.Events),
		log:          lg,
		entries:      make(map[string]*entry),
		stop:         make(chan struct{}),
	}
	for _, u := range cfg.Nodes {
		r.nodes = append(r.nodes, &node{url: strings.TrimRight(u, "/"), healthy: true, weight: 1})
	}
	r.rebuildLocked() // epoch 1: the construction-time membership
	r.health.Add(1)
	go r.runHealth()
	return r, nil
}

// Submit routes one payload to its ring node and posts it. Dead or
// unreachable nodes are skipped clockwise, and so are saturated ones: a
// 503 from the primary falls through to the healthy ring successors the
// same way a transport failure does — a busy node must not fail a
// submission while the rest of the pool sits idle. Only when every
// healthy candidate rejected does BusyError surface, carrying the
// smallest Retry-After hint seen across the pool. A node answering from
// its result cache completes the job instantly without enqueueing
// anything.
func (r *Remote) Submit(p jobs.Payload) (string, error) {
	return r.SubmitTraced(p, obs.SpanContext{})
}

// SubmitTraced is Submit under a caller-supplied parent span context
// (jobs.TracedSubmitter); the zero SpanContext starts a fresh trace. The
// dispatch trace records one "submit" span per node attempt, and the
// traceparent of the successful attempt is what the worker node's own job
// trace grafts under.
func (r *Remote) SubmitTraced(p jobs.Payload, parent obs.SpanContext) (string, error) {
	hash := r.placementHash(p)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return "", jobs.ErrClosed
	}
	r.sweepLocked(r.clock())
	v := r.view
	r.mu.Unlock()
	order := v.order(hash)

	byRef := p.ByReference()
	if byRef && p.ArtifactOrigin == "" {
		// Tell the worker where to pull referenced artifacts it lacks.
		p.ArtifactOrigin = r.cfg.ArtifactOrigin
	}
	body, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("dispatch: encode payload: %w", err)
	}
	// The trace is kept only if a node accepts the payload; a fully
	// rejected submission has no job record to hang it on.
	tr, root := obs.NewTraceFrom(parent, "dispatch")
	var lastTransport error
	var busy *BusyError
	for i, n := range order {
		r.mu.Lock()
		healthy := n.healthy
		r.mu.Unlock()
		if !healthy {
			continue
		}
		if r.cfg.Replicate {
			// Stamp this candidate's ring successor as the replica target
			// (the node failover would re-hash to), and keep the payload on
			// the entry so a lost node can be resubmitted there.
			p.ReplicaTarget = r.successorURL(order, i)
			if body, err = json.Marshal(p); err != nil {
				return "", fmt.Errorf("dispatch: encode payload: %w", err)
			}
		}
		att := root.Start("submit")
		att.SetAttr("node", n.url)
		id, err := r.submitTo(n, submission{body: body, byRef: byRef, hash: hash, payload: &p}, tr, root, att)
		att.End()
		var transport *transportError
		var be *BusyError
		switch {
		case errors.As(err, &transport):
			// Node unreachable: demote it and re-hash clockwise.
			att.SetAttr("error", transport.err.Error())
			r.demote(n, transport.err)
			lastTransport = transport.err
			continue
		case errors.As(err, &be):
			// Saturated but alive: keep the node in the ring and try its
			// successors; remember the smallest positive retry hint.
			att.SetAttr("error", "busy")
			if busy == nil || (be.After > 0 && (busy.After == 0 || be.After < busy.After)) {
				busy = be
			}
			continue
		}
		if err == nil {
			if i > 0 {
				// A non-primary candidate took the key: failover re-hash.
				r.mu.Lock()
				r.failovers++
				r.mu.Unlock()
			}
			r.log.Debug("dispatch routed", "job_id", id, "node", n.url, "trace_id", tr.TraceID())
		}
		return id, err
	}
	if busy != nil {
		return "", busy
	}
	if lastTransport != nil {
		return "", fmt.Errorf("dispatch: all worker nodes unreachable (last: %v): %w",
			lastTransport, jobs.ErrQueueFull)
	}
	return "", fmt.Errorf("dispatch: no healthy worker nodes: %w", jobs.ErrQueueFull)
}

// transportError marks connection-level submit failures (retryable on
// another node), as opposed to protocol answers from a live node.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }

// submission bundles what one routed payload carries through submitTo.
type submission struct {
	body    []byte
	byRef   bool
	hash    uint64
	payload *jobs.Payload // retained on the entry only when replicating
}

// successorURL returns the first healthy candidate after position i in ring
// order — where a failover for this key would land — or "" when the fleet
// has no second routable node.
func (r *Remote) successorURL(order []*node, i int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range order[i+1:] {
		if n.healthy {
			return n.url
		}
	}
	return ""
}

// postPayload performs the raw worker-intake POST, tagging connection-level
// failures as transportError.
func (r *Remote) postPayload(n *node, body []byte, byRef bool, traceparent string) (*http.Response, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, n.url+"/v1/worker/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, nil, &transportError{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if byRef {
		req.Header.Set(jobs.ArtifactPayloadHeader, "1")
	}
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, nil, &transportError{err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, nil, &transportError{err: err}
	}
	return resp, raw, nil
}

// submitTo posts the payload to one node and interprets the protocol. The
// request carries att's traceparent so the worker's job trace continues
// this dispatch trace; on acceptance the trace is attached to the local
// record (tr/root), on a cache hit the root is closed immediately.
func (r *Remote) submitTo(n *node, s submission, tr *obs.Trace, root, att *obs.Span) (string, error) {
	var traceparent string
	if sc := att.Context(); sc.Valid() {
		traceparent = sc.Traceparent()
	}
	resp, raw, err := r.postPayload(n, s.body, s.byRef, traceparent)
	if err != nil {
		return "", err
	}
	var retained *jobs.Payload
	if r.cfg.Replicate {
		retained = s.payload
	}

	switch resp.StatusCode {
	case http.StatusOK:
		// The node answered from its result cache: the job is born done.
		// No round trip is recorded — run_latency tracks real pipeline
		// executions, and a zero sample would mask worker latency.
		id, err := newID()
		if err != nil {
			return "", err
		}
		root.SetAttr("cache", "hit")
		root.SetAttr("node", n.url)
		att.End()
		root.End()
		now := r.clock()
		fin := now
		st := &jobs.Status{ID: id, State: jobs.StateDone, CreatedAt: now, FinishedAt: &fin}
		r.mu.Lock()
		n.submitted++
		n.cacheHits++
		n.completed++
		r.entries[id] = &entry{node: n, workerID: id, hash: s.hash, created: now, done: true, finished: now, status: st, result: raw, local: true, trace: tr, root: root}
		r.mu.Unlock()
		// Born done: the job is immediately streamable as a terminal event.
		r.hub.Publish(events.Event{Type: events.TypeDone, JobID: id, At: now, State: string(jobs.StateDone)})
		return id, nil

	case http.StatusAccepted:
		var sub struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &sub); err != nil || sub.ID == "" {
			return "", fmt.Errorf("dispatch: worker %s returned a malformed submit document", n.url)
		}
		root.SetAttr("node", n.url)
		now := r.clock()
		r.mu.Lock()
		n.submitted++
		r.entries[sub.ID] = &entry{node: n, workerID: sub.ID, hash: s.hash, created: now, trace: tr, root: root, payload: retained}
		r.mu.Unlock()
		r.hub.Publish(events.Event{Type: events.TypeQueued, JobID: sub.ID, At: now, State: string(jobs.StateQueued)})
		return sub.ID, nil

	case http.StatusServiceUnavailable:
		after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		r.mu.Lock()
		n.rejected++
		r.mu.Unlock()
		return "", &BusyError{Node: n.url, After: after}

	default:
		return "", fmt.Errorf("dispatch: worker %s rejected the payload: %s",
			n.url, envelopeError(raw, resp.StatusCode))
	}
}

// Status snapshots a routed job by polling its node.
func (r *Remote) Status(id string) (jobs.Status, error) {
	r.mu.Lock()
	r.sweepLocked(r.clock())
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return jobs.Status{}, jobs.ErrNotFound
	}
	if e.status != nil {
		st := *e.status
		r.mu.Unlock()
		return st, nil
	}
	if e.done {
		// Terminal without a worker snapshot — a failover recovery finished
		// the job locally. The worker no longer knows it; answer locally.
		st := r.statusLocked(id, e)
		r.mu.Unlock()
		return st, nil
	}
	n := e.node
	wid := e.workerID
	r.mu.Unlock()

	resp, err := r.client.Get(n.url + "/v1/jobs/" + wid)
	if err != nil {
		return r.loseNode(id, e, err), nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		// Node died mid-response: same lost-node path as a failed dial, so
		// Status keeps its contract of never erroring for a known id.
		return r.loseNode(id, e, err), nil
	}
	if resp.StatusCode == http.StatusNotFound {
		r.forget(id)
		return jobs.Status{}, jobs.ErrNotFound
	}
	var st jobs.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		return jobs.Status{}, fmt.Errorf("dispatch: worker %s status: %w", n.url, err)
	}
	// The worker knows the job by workerID; the caller by the public id.
	st.ID = id
	if st.State.Terminal() {
		snap := st
		r.mu.Lock()
		// Keep the snapshot: later Status calls skip the HTTP round trip,
		// and the Jobs listing reports the true terminal state (done vs
		// failed) regardless of which endpoint observed it first.
		e.status = &snap
		r.finishLocked(id, e, st.State == jobs.StateDone)
		r.mu.Unlock()
	}
	return st, nil
}

// Result fetches the finished response document from the job's node. Done
// jobs yield json.RawMessage (the worker's AnalysisResponse document);
// failed jobs yield the job's error.
func (r *Remote) Result(id string) (any, error) {
	r.mu.Lock()
	r.sweepLocked(r.clock())
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return nil, jobs.ErrNotFound
	}
	if e.result != nil {
		res := e.result
		r.mu.Unlock()
		return res, nil
	}
	if e.err != nil {
		err := e.err
		r.mu.Unlock()
		return nil, err
	}
	n := e.node
	wid := e.workerID
	r.mu.Unlock()

	resp, err := r.client.Get(n.url + "/v1/jobs/" + wid + "/result")
	if err != nil {
		return r.resultAfterLoss(id, e, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return r.resultAfterLoss(id, e, err)
	}

	switch resp.StatusCode {
	case http.StatusOK:
		res := json.RawMessage(raw)
		r.mu.Lock()
		e.result = res
		r.finishLocked(id, e, true)
		r.mu.Unlock()
		return res, nil
	case http.StatusAccepted:
		return nil, jobs.ErrNotFinished
	case http.StatusNotFound:
		r.forget(id)
		return nil, jobs.ErrNotFound
	default:
		// The worker's failed-job envelope: strip its route-level prefix so
		// the error matches what the in-process Manager would have returned.
		msg := strings.TrimPrefix(envelopeError(raw, resp.StatusCode), "analysis failed: ")
		jobErr := errors.New(msg)
		r.mu.Lock()
		e.err = jobErr
		r.finishLocked(id, e, false)
		r.mu.Unlock()
		return nil, jobErr
	}
}

// Metrics merges the per-node counters into the jobs.Metrics schema:
// throughput counters are fleet sums, Workers counts healthy nodes,
// QueueDepth the jobs routed but not yet terminal, and Run the
// submit→terminal round-trip latency observed by this dispatcher. Nodes
// carries the per-node breakdown.
func (r *Remote) Metrics() jobs.Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(r.clock())
	m := jobs.Metrics{
		Run:             jobs.Summarise(r.rtt),
		Evicted:         r.evicted,
		MembershipEpoch: r.epoch,
		Failovers:       r.failovers,
	}
	for _, n := range r.nodes {
		if n.healthy && !n.draining {
			m.Workers++
		}
		m.Submitted += n.submitted
		m.Rejected += n.rejected
		m.Completed += n.completed
		m.Failed += n.failed
		m.Nodes = append(m.Nodes, jobs.NodeMetrics{
			URL:       n.url,
			Healthy:   n.healthy,
			Submitted: n.submitted,
			Rejected:  n.rejected,
			Completed: n.completed,
			Failed:    n.failed,
			CacheHits: n.cacheHits,
			Weight:    n.weight,
			Draining:  n.draining,
			LastError: n.lastErr,
		})
	}
	for _, e := range r.entries {
		if !e.done {
			m.QueueDepth++
		}
	}
	return m
}

// Jobs lists the dispatcher's routed jobs newest-first (jobs.Lister).
// Terminal jobs report their observed status; jobs still out on a worker
// report queued — the dispatcher deliberately does not fan a listing call
// out to every node, so the running/queued distinction is only as fresh
// as the last poll or health cycle.
func (r *Remote) Jobs(f jobs.JobFilter) []jobs.Status {
	r.mu.Lock()
	r.sweepLocked(r.clock())
	out := make([]jobs.Status, 0, len(r.entries))
	for id, e := range r.entries {
		st := jobs.Status{ID: id, State: jobs.StateQueued, CreatedAt: e.created}
		switch {
		case e.status != nil:
			st = *e.status
			// The listing position must be stable across the job's
			// lifetime: keep the dispatcher's own submit time (what
			// non-terminal entries already report), not the worker's
			// CreatedAt — a job whose listed time silently shifted once
			// its terminal status was cached could cross a pagination
			// cursor between pages and be skipped or served twice.
			st.CreatedAt = e.created
		case e.done:
			st.State = jobs.StateDone
			if e.err != nil {
				st.State = jobs.StateFailed
				st.Err = e.err.Error()
			}
			fin := e.finished
			st.FinishedAt = &fin
		}
		if f.State != "" && st.State != f.State {
			continue
		}
		if !f.AfterCursor(st.CreatedAt, id) {
			continue
		}
		out = append(out, st)
	}
	r.mu.Unlock()
	jobs.SortStatuses(out)
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// Remote is a Lister.
var _ jobs.Lister = (*Remote)(nil)

// Remote is a Tracer and a TracedSubmitter.
var (
	_ jobs.Tracer          = (*Remote)(nil)
	_ jobs.TracedSubmitter = (*Remote)(nil)
)

// Trace returns the dispatch-side span tree for a routed job with the
// worker node's own job trace grafted under the submit span that carried
// its traceparent (jobs.Tracer). The worker fetch is best-effort: an
// unreachable node or a worker that no longer knows the id yields the
// dispatch spans alone rather than an error — cache-hit jobs never had a
// worker job to begin with.
func (r *Remote) Trace(id string) (*obs.TraceDoc, error) {
	r.mu.Lock()
	r.sweepLocked(r.clock())
	e, ok := r.entries[id]
	if !ok || e.trace == nil {
		r.mu.Unlock()
		return nil, jobs.ErrNotFound
	}
	doc := e.trace.Doc(id)
	local := e.local
	url := e.node.url
	wid := e.workerID
	r.mu.Unlock()
	if local {
		return doc, nil
	}
	resp, err := r.client.Get(url + "/v1/jobs/" + wid + "/trace")
	if err != nil {
		return doc, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return doc, nil
	}
	var worker obs.TraceDoc
	if json.Unmarshal(raw, &worker) != nil || worker.Root == nil {
		return doc, nil
	}
	graftSpan(doc.Root, worker.Root)
	return doc, nil
}

// graftSpan hangs a remote subtree under the span it names as its parent
// (the propagated traceparent's span id), falling back to the local root
// when the parent is not found — the tree stays coherent even if the
// remote recorded no parent.
func graftSpan(root, remote *obs.SpanDoc) {
	if p := findSpan(root, remote.ParentID); p != nil {
		p.Children = append(p.Children, remote)
		return
	}
	root.Children = append(root.Children, remote)
}

// findSpan walks the tree for the span with the given id.
func findSpan(s *obs.SpanDoc, id string) *obs.SpanDoc {
	if id == "" || s == nil {
		return nil
	}
	if s.SpanID == id {
		return s
	}
	for _, c := range s.Children {
		if hit := findSpan(c, id); hit != nil {
			return hit
		}
	}
	return nil
}

// Close stops intake and the health prober. Worker nodes drain their own
// queues; jobs already routed remain pollable on their nodes.
func (r *Remote) Close(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	r.health.Wait()
	r.hub.Close()
	return nil
}

// placementHash keys the payload onto the ring: the cache key when the
// payload carries one (identical clips → identical node), otherwise a hash
// of the serialized payload.
func (r *Remote) placementHash(p jobs.Payload) uint64 {
	if key, ok := p.Key(); ok {
		return hashString(key.String())
	}
	raw, _ := json.Marshal(p)
	return hashString(string(raw))
}

// demote marks a node unreachable until the prober revives it.
func (r *Remote) demote(n *node, err error) {
	r.mu.Lock()
	n.healthy = false
	n.lastErr = err.Error()
	r.mu.Unlock()
}

// loseNode reports a job stranded on an unreachable node: the node is
// demoted and the job reports failed with the transport error, matching
// the contract that Status never errors for a known id. The failure view
// is deliberately NOT latched onto the record: a single dropped
// connection or mid-restart poll must not permanently discard a result
// that is still sitting on the worker — if the prober revives the node,
// the next poll recovers the job's real state. A genuinely dead node
// keeps answering failed on every poll.
//
// Under Config.Replicate the retained payload is first resubmitted to the
// next ring candidate — the successor holding the replicated cache entry —
// and a successful recovery reports the job's live state instead of the
// failure.
func (r *Remote) loseNode(id string, e *entry, err error) jobs.Status {
	r.demote(e.node, err)
	if r.recover(id, e) {
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.statusLocked(id, e)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fin := r.clock()
	return jobs.Status{
		ID:         id,
		State:      jobs.StateFailed,
		CreatedAt:  e.created,
		FinishedAt: &fin,
		Err:        fmt.Sprintf("dispatch: worker %s unreachable: %v", e.node.url, err),
	}
}

// statusLocked snapshots an entry's locally known state. Caller holds mu.
func (r *Remote) statusLocked(id string, e *entry) jobs.Status {
	if e.status != nil {
		return *e.status
	}
	st := jobs.Status{ID: id, State: jobs.StateQueued, CreatedAt: e.created}
	if e.done {
		st.State = jobs.StateDone
		if e.err != nil {
			st.State = jobs.StateFailed
			st.Err = e.err.Error()
		}
		fin := e.finished
		st.FinishedAt = &fin
	}
	return st
}

// resultAfterLoss is Result's lost-node path: after loseNode (and its
// recovery attempt) the entry may hold the replicated result (served by the
// successor's cache), still be in flight on a new node, or be genuinely
// stranded.
func (r *Remote) resultAfterLoss(id string, e *entry, err error) (any, error) {
	st := r.loseNode(id, e, err)
	r.mu.Lock()
	res, jobErr := e.result, e.err
	r.mu.Unlock()
	switch {
	case res != nil:
		return res, nil
	case jobErr != nil:
		return nil, jobErr
	case !st.State.Terminal():
		return nil, jobs.ErrNotFinished // recovered onto a new node; poll on
	default:
		return nil, errors.New(st.Err)
	}
}

// maxResubmits bounds failover resubmissions per job, so a payload that
// kills every node it lands on cannot cycle through the fleet forever.
const maxResubmits = 3

// recover resubmits a stranded job's retained payload to the next ring
// candidate. The replica target stamped at original submit time was exactly
// the first such candidate, so when replication won the race the successor
// answers from its cache — the job completes byte-identical with zero
// recompute; otherwise the successor re-runs the deterministic pipeline.
// Reports whether the job found a new home (or finished outright).
func (r *Remote) recover(id string, e *entry) bool {
	if !r.cfg.Replicate {
		return false
	}
	r.mu.Lock()
	if e.done || e.recovering || e.payload == nil || e.resubmits >= maxResubmits || r.closed {
		r.mu.Unlock()
		return false
	}
	e.recovering = true
	dead := e.node
	hash := e.hash
	p := *e.payload
	v := r.view
	root := e.root
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		e.recovering = false
		r.mu.Unlock()
	}()

	order := v.order(hash)
	byRef := p.ByReference()
	for i, n := range order {
		r.mu.Lock()
		healthy := n.healthy
		r.mu.Unlock()
		if n == dead || !healthy {
			continue
		}
		// Re-stamp the successor for the job's NEW home, so its cache fill
		// replicates onward instead of pointing back at the dead node.
		p.ReplicaTarget = r.successorURL(order, i)
		body, err := json.Marshal(p)
		if err != nil {
			return false
		}
		// The resubmit carries its own span's traceparent, so the successor's
		// job trace grafts under the same trace id as the original submit —
		// a failover must not sever the job's trace.
		att := root.Start("resubmit")
		att.SetAttr("node", n.url)
		att.SetAttr("was", dead.url)
		var traceparent string
		if sc := att.Context(); sc.Valid() {
			traceparent = sc.Traceparent()
		}
		resp, raw, err := r.postPayload(n, body, byRef, traceparent)
		if err != nil {
			var transport *transportError
			if errors.As(err, &transport) {
				att.SetAttr("error", transport.err.Error())
				att.End()
				r.demote(n, transport.err)
				continue
			}
			att.SetAttr("error", err.Error())
			att.End()
			return false
		}
		att.End()
		switch resp.StatusCode {
		case http.StatusOK:
			// The successor answered from its (replicated) cache.
			r.mu.Lock()
			e.node = n
			e.workerID = id
			e.result = json.RawMessage(raw)
			e.resubmits++
			r.failovers++
			n.submitted++
			n.cacheHits++
			r.finishLocked(id, e, true)
			r.mu.Unlock()
			r.log.Info("dispatch failover recovered from replica", "job_id", id,
				"node", n.url, "was", dead.url)
			return true
		case http.StatusAccepted:
			var sub struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(raw, &sub) != nil || sub.ID == "" {
				return false
			}
			r.mu.Lock()
			e.node = n
			e.workerID = sub.ID
			e.resubmits++
			r.failovers++
			n.submitted++
			r.mu.Unlock()
			r.log.Info("dispatch failover resubmitted", "job_id", id,
				"node", n.url, "worker_id", sub.ID, "was", dead.url)
			return true
		case http.StatusServiceUnavailable:
			r.mu.Lock()
			n.rejected++
			r.mu.Unlock()
			continue
		default:
			return false
		}
	}
	return false
}

// finishLocked records a terminal observation exactly once and publishes
// it on the dispatcher's local event feed. Caller holds mu.
func (r *Remote) finishLocked(id string, e *entry, ok bool) {
	if e.done {
		return
	}
	e.done = true
	e.payload = nil // replication retention ends at the terminal state
	e.finished = r.clock()
	ev := events.Event{Type: events.TypeDone, JobID: id, At: e.finished, State: string(jobs.StateDone)}
	if ok {
		e.node.completed++
	} else {
		e.node.failed++
		ev.Type, ev.State = events.TypeFailed, string(jobs.StateFailed)
		if e.status != nil {
			ev.Error = e.status.Err
		} else if e.err != nil {
			ev.Error = e.err.Error()
		}
	}
	r.hub.Publish(ev)
	e.root.End()
	r.recordRTTLocked(e.finished.Sub(e.created))
	roundtripSeconds.Observe(e.finished.Sub(e.created).Seconds())
	r.slo.Observe(e.finished.Sub(e.created), ok)
	r.log.Debug("dispatch terminal observed", "job_id", id, "node", e.node.url,
		"state", ev.State, "trace_id", e.trace.TraceID(),
		"roundtrip_ms", float64(e.finished.Sub(e.created))/float64(time.Millisecond))
}

// forget drops a local record (the node no longer knows the id).
func (r *Remote) forget(id string) {
	r.mu.Lock()
	delete(r.entries, id)
	r.mu.Unlock()
}

// sweepLocked evicts expired local records, mirroring the Manager's TTL
// semantics: terminal jobs expire ResultTTL after their terminal state was
// observed — never while still queued or running on a worker. Records that
// never reach a terminal state (the client stopped polling a job on a
// node that later died) are bounded by a generous multiple of the TTL so
// the table cannot leak forever. The full-map scan is throttled to once
// per quarter-TTL so millisecond-interval pollers do not pay O(entries)
// under the lock on every call. Caller holds mu.
func (r *Remote) sweepLocked(now time.Time) {
	if r.cfg.ResultTTL <= 0 {
		return
	}
	if now.Sub(r.lastSweep) < r.cfg.ResultTTL/4 {
		return
	}
	r.lastSweep = now
	for id, e := range r.entries {
		expired := e.done && now.Sub(e.finished) >= r.cfg.ResultTTL ||
			!e.done && now.Sub(e.created) >= 8*r.cfg.ResultTTL
		if expired {
			delete(r.entries, id)
			r.evicted++
			r.hub.Publish(events.Event{Type: events.TypeEvicted, JobID: id, At: now})
		}
	}
}

// recordRTTLocked appends to the round-trip ring. Caller holds mu.
func (r *Remote) recordRTTLocked(d time.Duration) {
	if len(r.rtt) < rttSample {
		r.rtt = append(r.rtt, d)
		return
	}
	r.rtt[r.rttIdx] = d
	r.rttIdx = (r.rttIdx + 1) % rttSample
}

// runHealth probes every node each interval; a probe success revives a
// demoted node, re-expanding the ring. Each cycle also resolves the
// terminal state of jobs nobody is polling, so queue_depth converges to
// the truth instead of counting finished-but-unpolled jobs for up to a
// whole record TTL.
func (r *Remote) runHealth() {
	defer r.health.Done()
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeAll()
			r.resolvePending()
			r.finalizeDrains()
			r.scrapeAll()
		}
	}
}

// resolveBatch bounds how many unresolved jobs one health cycle polls, so
// a deep backlog on a slow worker cannot stretch a cycle to minutes and
// starve probing (convergence just takes a few cycles instead of one).
const resolveBatch = 32

// resolvePending polls the status of routed jobs whose terminal state has
// not been observed yet, up to resolveBatch per cycle. Clients that fetch
// their results keep queue_depth accurate for free; jobs that finish on a
// worker and are never polled would otherwise inflate the gauge until the
// local-record TTL sweep. Transport failures demote the node but do not
// touch the record (the non-latching lost-node contract); the next cycle
// retries. The loop aborts between requests once the dispatcher stops, so
// Close never waits for more than one in-flight poll.
func (r *Remote) resolvePending() {
	type pending struct {
		id string
		e  *entry
	}
	r.mu.Lock()
	var ps []pending
	for id, e := range r.entries {
		if !e.done {
			ps = append(ps, pending{id: id, e: e})
			if len(ps) == resolveBatch {
				break
			}
		}
	}
	r.mu.Unlock()

	for _, p := range ps {
		select {
		case <-r.stop:
			return
		default:
		}
		r.mu.Lock()
		healthy := p.e.node.healthy
		url := p.e.node.url
		wid := p.e.workerID
		r.mu.Unlock()
		if !healthy {
			// The prober has not revived the node: under replication the
			// health cycle itself drives recovery, so an unpolled job does
			// not stay stranded until a client happens to ask for it.
			r.recover(p.id, p.e)
			continue
		}
		resp, err := r.client.Get(url + "/v1/jobs/" + wid)
		if err != nil {
			r.demote(p.e.node, err)
			r.recover(p.id, p.e)
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			r.forget(p.id)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			continue
		}
		var st jobs.Status
		if json.Unmarshal(raw, &st) != nil {
			continue
		}
		st.ID = p.id
		if st.State.Terminal() {
			snap := st
			r.mu.Lock()
			p.e.status = &snap
			r.finishLocked(p.id, p.e, st.State == jobs.StateDone)
			r.mu.Unlock()
		}
	}
}

// probeAll checks liveness of every current member (the list mutates under
// joins/drains, so it is snapshotted under the lock first).
func (r *Remote) probeAll() {
	r.mu.Lock()
	members := append([]*node(nil), r.nodes...)
	r.mu.Unlock()
	var wg sync.WaitGroup
	for _, n := range members {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			resp, err := r.client.Get(n.url + "/v1/healthz")
			if err != nil {
				r.demote(n, err)
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			r.mu.Lock()
			if resp.StatusCode == http.StatusOK {
				n.healthy = true
				n.lastErr = ""
			} else {
				n.healthy = false
				n.lastErr = fmt.Sprintf("healthz status %d", resp.StatusCode)
			}
			r.mu.Unlock()
		}(n)
	}
	wg.Wait()
}

// envelopeError extracts the shared JSON error envelope, falling back to
// the raw body / status code.
func envelopeError(raw []byte, status int) string {
	var doc struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &doc); err == nil && doc.Error != "" {
		return doc.Error
	}
	if len(raw) > 0 {
		return fmt.Sprintf("status %d: %s", status, bytes.TrimSpace(raw))
	}
	return fmt.Sprintf("status %d", status)
}

// newID returns a 16-hex-char random id for cache-answered jobs.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("dispatch: id generation: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
