package dispatch

// Tests for the dispatcher's observability plane: trace propagation
// through the failover-resubmit path, metrics federation over stub
// workers, and the fleet/drain health watchdogs.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/obs"
)

// traceRecordingWorker is a stub worker intake that records the
// Traceparent header of every submit it accepts and answers every status
// poll with "running".
type traceRecordingWorker struct {
	mu           sync.Mutex
	traceparents []string
	srv          *httptest.Server
}

func newTraceRecordingWorker(idPrefix string) *traceRecordingWorker {
	w := &traceRecordingWorker{}
	seq := 0
	w.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.mu.Lock()
			w.traceparents = append(w.traceparents, r.Header.Get(obs.TraceparentHeader))
			seq++
			id := fmt.Sprintf("%s%08d", idPrefix, seq)
			w.mu.Unlock()
			rw.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(rw, `{"id":%q,"state":"queued"}`, id)
			return
		}
		fmt.Fprintln(rw, `{"id":"x","state":"running","created_at":"2026-01-01T00:00:00Z"}`)
	}))
	return w
}

func (w *traceRecordingWorker) recorded() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.traceparents...)
}

// TestFailoverResubmitKeepsTraceID: when the node holding a job dies, the
// recovery resubmit to the ring successor must carry a traceparent under
// the ORIGINAL trace id — a failover must not sever the job's trace.
func TestFailoverResubmitKeepsTraceID(t *testing.T) {
	a := newTraceRecordingWorker("aaaaaaaa")
	b := newTraceRecordingWorker("bbbbbbbb")
	defer a.srv.Close()
	defer b.srv.Close()

	d, err := New(Config{
		Nodes:          []string{a.srv.URL, b.srv.URL},
		HealthInterval: time.Hour,
		Replicate:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	parentTrace, parentRoot := obs.NewTrace("client")
	parent := parentRoot.Context()
	id, err := d.SubmitTraced(jobs.Payload{Kind: jobs.KindAnalysis, CacheKey: "failover-trace"}, parent)
	if err != nil {
		t.Fatal(err)
	}

	// Find which stub took the submit, then kill it.
	primary, successor := a, b
	if len(a.recorded()) == 0 {
		primary, successor = b, a
	}
	first := primary.recorded()
	if len(first) != 1 {
		t.Fatalf("primary recorded %d submits, want 1", len(first))
	}
	origSC, ok := obs.ParseTraceparent(first[0])
	if !ok {
		t.Fatalf("original submit traceparent %q does not parse", first[0])
	}
	if origSC.TraceID != parentTrace.TraceID() {
		t.Fatalf("submit trace id %q, want the caller's %q", origSC.TraceID, parentTrace.TraceID())
	}
	primary.srv.Close()

	// The next status poll hits the dead node, demotes it and resubmits to
	// the successor.
	st, err := d.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatalf("job marked %s after failover, want still in flight on the successor", st.State)
	}
	resub := successor.recorded()
	if len(resub) != 1 {
		t.Fatalf("successor recorded %d submits, want the one resubmit", len(resub))
	}
	resubSC, ok := obs.ParseTraceparent(resub[0])
	if !ok {
		t.Fatalf("resubmit traceparent %q does not parse", resub[0])
	}
	if resubSC.TraceID != origSC.TraceID {
		t.Errorf("resubmit trace id %q, want the original %q", resubSC.TraceID, origSC.TraceID)
	}
	if resubSC.SpanID == origSC.SpanID {
		t.Error("resubmit reused the submit span id; want a fresh resubmit span under the same trace")
	}

	// The job's own trace shows the failover: a resubmit span naming both
	// nodes.
	doc, err := d.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	var resubSpan *obs.SpanDoc
	for _, c := range doc.Root.Children {
		if c.Name == "resubmit" {
			resubSpan = c
		}
	}
	if resubSpan == nil {
		t.Fatal("no resubmit span in the job trace after failover")
	}
	if resubSpan.Attrs["was"] != primary.srv.URL || resubSpan.Attrs["node"] != successor.srv.URL {
		t.Errorf("resubmit span attrs %v, want was=%s node=%s", resubSpan.Attrs, primary.srv.URL, successor.srv.URL)
	}
}

// metricsWorker is a stub worker that serves a fixed Prometheus
// exposition alongside the usual intake/status stubs.
func metricsWorker(t *testing.T, jobsSubmitted float64) *httptest.Server {
	t.Helper()
	var sb strings.Builder
	p := obs.NewPromWriter(&sb)
	p.Counter("slj_jobs_submitted_total", "Jobs accepted into the queue.", jobsSubmitted)
	p.Gauge("slj_jobs_queue_depth", "Jobs currently waiting in the queue.", 0)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	exposition := sb.String()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/metrics":
			w.Header().Set("Content-Type", obs.ContentType)
			fmt.Fprint(w, exposition)
		case r.Method == http.MethodPost:
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintln(w, `{"id":"feedface00000001","state":"queued"}`)
		default:
			fmt.Fprintln(w, `{"status":"ok"}`)
		}
	}))
}

// TestFederatedMetricsMergesWorkers: the dispatcher scrapes every member
// and serves one lint-clean node-labelled exposition; a dead member is
// reported as a failed scrape, not dropped silently.
func TestFederatedMetricsMergesWorkers(t *testing.T) {
	w1 := metricsWorker(t, 3)
	w2 := metricsWorker(t, 5)
	defer w1.Close()
	defer w2.Close()
	dead := metricsWorker(t, 0)
	dead.Close()

	d, err := New(Config{
		Nodes:          []string{w1.URL, w2.URL, dead.URL},
		HealthInterval: time.Hour, // the sync stale-refresh path does the scraping
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	merged, stats, err := d.FederatedMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesScraped != 2 || stats.ScrapeFailures < 1 {
		t.Errorf("federation stats %+v, want 2 scraped and >= 1 failure", stats)
	}

	res := obs.LintExposition(merged, []string{
		"slj_fleet_members", "slj_fleet_scrape_ok", "slj_jobs_submitted_total",
	})
	if len(res.Issues) != 0 {
		t.Fatalf("federated exposition fails lint: %v", res.Issues)
	}
	submitted := map[string]float64{}
	scrapeOK := map[string]float64{}
	for _, s := range res.Samples {
		switch s.Name {
		case "slj_jobs_submitted_total":
			submitted[s.Labels["node"]] = s.Value
		case "slj_fleet_scrape_ok":
			scrapeOK[s.Labels["node"]] = s.Value
		case "slj_fleet_members":
			if s.Value != 3 {
				t.Errorf("slj_fleet_members = %v, want 3", s.Value)
			}
		}
	}
	if submitted[w1.URL] != 3 || submitted[w2.URL] != 5 {
		t.Errorf("per-node submitted %v, want %s=3 %s=5", submitted, w1.URL, w2.URL)
	}
	if scrapeOK[w1.URL] != 1 || scrapeOK[w2.URL] != 1 || scrapeOK[dead.URL] != 0 {
		t.Errorf("scrape_ok %v, want live nodes 1 and the dead node 0", scrapeOK)
	}

	// The cache-only stats view must agree without re-scraping.
	if cached := d.FederationStats(); cached.NodesScraped != stats.NodesScraped {
		t.Errorf("FederationStats() = %+v, want the cached %+v", cached, stats)
	}
}

// TestDispatchComponentHealth: the "dispatch" component degrades when the
// last healthy node is demoted.
func TestDispatchComponentHealth(t *testing.T) {
	dead := metricsWorker(t, 0)
	dead.Close()
	d, err := New(Config{Nodes: []string{dead.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	if h := d.ComponentHealth()["dispatch"]; h.Status != jobs.HealthOK {
		t.Fatalf("dispatch health before any traffic = %+v, want ok (unprobed nodes start healthy)", h)
	}
	// A failed submit demotes the only node.
	if _, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis}); err == nil {
		t.Fatal("submit to a dead fleet succeeded")
	}
	h := d.ComponentHealth()["dispatch"]
	if h.Status != jobs.HealthDegraded {
		t.Fatalf("dispatch health with every node demoted = %+v, want degraded", h)
	}
}

// TestDrainStuckComponentHealth: a draining node whose pending count has
// not moved past the threshold flips the "drain" component.
func TestDrainStuckComponentHealth(t *testing.T) {
	// Workers that accept jobs and report them running forever: a drain of
	// a loaded node can never finish.
	mkWorker := func(idPrefix string) *httptest.Server {
		seq := 0
		var mu sync.Mutex
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				mu.Lock()
				seq++
				id := fmt.Sprintf("%s%08d", idPrefix, seq)
				mu.Unlock()
				w.WriteHeader(http.StatusAccepted)
				fmt.Fprintf(w, `{"id":%q,"state":"queued"}`, id)
				return
			}
			fmt.Fprintln(w, `{"id":"x","state":"running","created_at":"2026-01-01T00:00:00Z"}`)
		}))
	}
	wa := mkWorker("aaaaaaaa")
	wb := mkWorker("bbbbbbbb")
	defer wa.Close()
	defer wb.Close()

	clk := struct {
		mu  sync.Mutex
		now time.Time
	}{now: time.Unix(1_000_000, 0)}
	now := func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		return clk.now
	}
	advance := func(dur time.Duration) {
		clk.mu.Lock()
		clk.now = clk.now.Add(dur)
		clk.mu.Unlock()
	}

	d, err := New(Config{
		Nodes:           []string{wa.URL, wb.URL},
		HealthInterval:  time.Hour,
		DrainStuckAfter: time.Minute,
		Clock:           now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	// Spread keys so both nodes hold pending jobs.
	for i := 0; i < 8; i++ {
		if _, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis, CacheKey: strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Drain a node that actually holds pending work.
	var drained string
	for _, n := range d.Fleet().Nodes {
		if n.Pending > 0 {
			drained = n.URL
			break
		}
	}
	if drained == "" {
		t.Fatal("no node with pending jobs to drain")
	}
	if _, err := d.DrainNode(drained); err != nil {
		t.Fatal(err)
	}

	if h := d.ComponentHealth()["drain"]; h.Status != jobs.HealthOK {
		t.Fatalf("drain health inside the threshold = %+v, want ok", h)
	}
	advance(2 * time.Minute)
	h := d.ComponentHealth()["drain"]
	if h.Status != jobs.HealthDegraded {
		t.Fatalf("drain health past the threshold = %+v, want degraded", h)
	}
	if !strings.Contains(h.Reason, drained) {
		t.Errorf("degraded reason %q does not name the stuck node %s", h.Reason, drained)
	}
}

// TestRemoteSLOObserved: the dispatcher feeds its SLO tracker from
// observed terminal states.
func TestRemoteSLOObserved(t *testing.T) {
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintln(w, `{"id":"feedface00000001","state":"queued"}`)
			return
		}
		fmt.Fprintln(w, `{"id":"feedface00000001","state":"done","created_at":"2026-01-01T00:00:00Z"}`)
	}))
	defer worker.Close()

	d, err := New(Config{Nodes: []string{worker.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())
	slo := obs.NewSLO(time.Minute, 0.99)
	d.SetSLO(slo)

	id, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Status(id); err != nil { // observes the terminal state
		t.Fatal(err)
	}
	total, bad := slo.Window(obs.SLOWindowShort)
	if total != 1 || bad != 0 {
		t.Errorf("slo window after one successful job = (%d, %d), want (1, 0)", total, bad)
	}
}
