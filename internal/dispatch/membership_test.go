// Tests for the elastic fleet: bounded key movement on the weighted ring,
// probe-gated admission, graceful drain, and failover recovery from a ring
// successor's replicated cache (DESIGN.md §16).
package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/jobs"
)

// ringPrimaries maps a fixed key population to their primary node URL.
func ringPrimaries(urls []string, weights []int, keys int) []string {
	r := buildWeightedRing(urls, weights, 64)
	out := make([]string, keys)
	for i := 0; i < keys; i++ {
		out[i] = urls[r.walk(hashString("clip-" + strconv.Itoa(i)))[0]]
	}
	return out
}

// TestRingBoundedKeyMovement is the property behind every membership
// mutation: a topology change moves only the keys it must. A join moves
// keys only onto the joiner, a leave moves only the leaver's keys, and a
// weight increase moves keys only onto the upweighted node — in every case
// a bounded fraction of the key space, never a reshuffle.
func TestRingBoundedKeyMovement(t *testing.T) {
	const keys = 4000
	base := ringPrimaries([]string{"http://a", "http://b", "http://c"}, []int{1, 1, 1}, keys)

	// Join: node d enters a 3-node ring. Expected movement ~1/4.
	joined := ringPrimaries([]string{"http://a", "http://b", "http://c", "http://d"}, []int{1, 1, 1, 1}, keys)
	moved := 0
	for i := range base {
		if joined[i] != base[i] {
			moved++
			if joined[i] != "http://d" {
				t.Fatalf("key %d moved %s -> %s on join of d: only the joiner may gain keys",
					i, base[i], joined[i])
			}
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Errorf("join moved %d/%d keys, want roughly %d (bounded, non-zero)", moved, keys, keys/4)
	}

	// Leave: node c departs. Exactly c's keys re-home; everyone else's stay.
	left := ringPrimaries([]string{"http://a", "http://b"}, []int{1, 1}, keys)
	for i := range base {
		if base[i] == "http://c" {
			if left[i] == "http://c" {
				t.Fatalf("key %d still maps to the departed node", i)
			}
		} else if left[i] != base[i] {
			t.Fatalf("key %d moved %s -> %s on leave of c: keys not homed on the leaver must not move",
				i, base[i], left[i])
		}
	}

	// Weight change: b grows 1 -> 3. Weight growth only adds ring points,
	// so movement flows exclusively toward b.
	heavier := ringPrimaries([]string{"http://a", "http://b", "http://c"}, []int{1, 3, 1}, keys)
	moved = 0
	gained := 0
	for i := range base {
		if heavier[i] != base[i] {
			moved++
			if heavier[i] != "http://b" {
				t.Fatalf("key %d moved %s -> %s on upweighting b: only b may gain keys",
					i, base[i], heavier[i])
			}
		}
		if heavier[i] == "http://b" {
			gained++
		}
	}
	if moved == 0 || moved > 3*keys/4 {
		t.Errorf("weight change moved %d/%d keys — want a bounded, non-zero fraction", moved, keys)
	}
	if gained <= keys/3 {
		t.Errorf("b owns %d/%d keys at weight 3 of 5 total — upweighting had no effect", gained, keys)
	}
}

// acceptingWorker fakes a worker node that 202-accepts every payload and
// reports queued status, counting its intake.
func acceptingWorker(t *testing.T, accepts *int32) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			n := atomic.AddInt32(accepts, 1)
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"id":"feed%012d","state":"queued"}`, n)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`) // healthz and status polls
	}))
}

// TestJoinProbeGatesAdmission: an unreachable node never enters the
// membership; a live one does, bumping the epoch exactly once — an
// unchanged re-announce is a no-op that keeps the epoch.
func TestJoinProbeGatesAdmission(t *testing.T) {
	var aAccepts, bAccepts int32
	a := acceptingWorker(t, &aAccepts)
	defer a.Close()
	b := acceptingWorker(t, &bAccepts)
	defer b.Close()

	d, err := New(Config{Nodes: []string{a.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	before := d.Fleet()
	if _, err := d.JoinNode("http://127.0.0.1:1", 2); !errors.Is(err, jobs.ErrNodeUnhealthy) {
		t.Fatalf("join of an unreachable node = %v, want ErrNodeUnhealthy", err)
	}
	if after := d.Fleet(); after.Epoch != before.Epoch || len(after.Nodes) != 1 {
		t.Fatalf("failed join mutated the membership: %+v", after)
	}

	view, err := d.JoinNode(b.URL, 3)
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch != before.Epoch+1 || len(view.Nodes) != 2 {
		t.Fatalf("join: epoch %d nodes %d, want epoch %d nodes 2", view.Epoch, len(view.Nodes), before.Epoch+1)
	}
	for _, n := range view.Nodes {
		if n.URL == b.URL && (n.Weight != 3 || !n.Healthy) {
			t.Fatalf("joined node state %+v", n)
		}
	}

	// Idempotent re-announce: same URL, same weight — epoch untouched.
	again, err := d.JoinNode(b.URL, 3)
	if err != nil {
		t.Fatal(err)
	}
	if again.Epoch != view.Epoch {
		t.Errorf("no-op re-announce bumped the epoch %d -> %d", view.Epoch, again.Epoch)
	}

	// A runtime-joined node actually receives traffic.
	for i := 0; i < 32; i++ {
		if _, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis, CacheKey: "join-" + strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if atomic.LoadInt32(&bAccepts) == 0 {
		t.Error("runtime-joined node got no traffic across 32 keys")
	}
}

// TestDrainStopsNewKeysThenRemoves: a draining node leaves the ring
// immediately (no new keys), stays a member while jobs are pending, and is
// removed by drain finalization once none remain. The last routable node
// cannot drain.
func TestDrainStopsNewKeysThenRemoves(t *testing.T) {
	var aAccepts, bAccepts int32
	a := acceptingWorker(t, &aAccepts)
	defer a.Close()
	b := acceptingWorker(t, &bAccepts)
	defer b.Close()

	d, err := New(Config{Nodes: []string{a.URL, b.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	if _, err := d.DrainNode("http://nobody:1"); !errors.Is(err, jobs.ErrNodeUnknown) {
		t.Fatalf("drain of a non-member = %v, want ErrNodeUnknown", err)
	}

	view, err := d.DrainNode(b.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Nodes) != 2 {
		t.Fatalf("draining node left the membership early: %+v", view.Nodes)
	}
	for _, n := range view.Nodes {
		if n.URL == b.URL && !n.Draining {
			t.Fatalf("drained node not marked draining: %+v", n)
		}
	}

	// No new keys route to the draining node.
	for i := 0; i < 24; i++ {
		if _, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis, CacheKey: "drain-" + strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt32(&bAccepts); got != 0 {
		t.Errorf("draining node accepted %d new keys, want 0", got)
	}
	if atomic.LoadInt32(&aAccepts) != 24 {
		t.Errorf("surviving node accepted %d/24", atomic.LoadInt32(&aAccepts))
	}

	// Nothing pending on b — finalization (normally the health loop's job)
	// removes it.
	d.finalizeDrains()
	if after := d.Fleet(); len(after.Nodes) != 1 || after.Nodes[0].URL != a.URL {
		t.Fatalf("drain did not finalize: %+v", after.Nodes)
	}

	if _, err := d.DrainNode(a.URL); !errors.Is(err, jobs.ErrLastNode) {
		t.Fatalf("drain of the last node = %v, want ErrLastNode", err)
	}
}

// TestFailoverServesReplicatedResult is the dispatch-level chaos scenario:
// a job lands on its primary, the primary dies, and the result poll
// recovers the job from the ring successor — which, having received the
// replicated payload target, answers from its cache with the finished
// document. The job completes under its original id with a failover
// counted.
func TestFailoverServesReplicatedResult(t *testing.T) {
	resultDoc := `{"advice":["good takeoff"],"distance_cm":182}`

	var primaryAccepts int32
	primary := acceptingWorker(t, &primaryAccepts)
	defer primary.Close()

	var successorTarget atomic.Value // replica_target seen on the successor
	successorTarget.Store("")
	var successorRuns int32
	successor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		atomic.AddInt32(&successorRuns, 1)
		var p jobs.Payload
		if err := json.NewDecoder(r.Body).Decode(&p); err == nil {
			successorTarget.Store(p.ReplicaTarget)
		}
		// Replica cache hit: answer the finished document without running
		// anything.
		w.Header().Set("X-SLJ-Cache", "hit")
		fmt.Fprint(w, resultDoc)
	}))
	defer successor.Close()

	d, err := New(Config{
		Nodes:          []string{primary.URL, successor.URL},
		Replicate:      true,
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	// Find a key homed on the primary: its accept counter moves.
	var id string
	for i := 0; i < 256 && id == ""; i++ {
		before := atomic.LoadInt32(&primaryAccepts)
		jid, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis, CacheKey: "chaos-" + strconv.Itoa(i)})
		if err != nil {
			t.Fatal(err)
		}
		if atomic.LoadInt32(&primaryAccepts) > before {
			id = jid
		}
	}
	if id == "" {
		t.Fatal("no key homed on the primary across 256 tries")
	}

	// Kill the primary; the next result poll must fail over.
	runsBeforeKill := atomic.LoadInt32(&successorRuns)
	primary.Close()

	res, err := d.Result(id)
	if err != nil {
		t.Fatalf("result after primary death = %v, want the replicated document", err)
	}
	raw, ok := res.(json.RawMessage)
	if !ok {
		t.Fatalf("result type %T", res)
	}
	if string(raw) != resultDoc {
		t.Fatalf("failover result %q, want the successor's byte-identical document %q", raw, resultDoc)
	}

	st, err := d.Status(id)
	if err != nil || st.State != jobs.StateDone {
		t.Fatalf("status after recovery: %+v, %v", st, err)
	}
	if got := successorTarget.Load().(string); got == primary.URL {
		t.Errorf("recovered payload still targets the dead primary %q for replication", got)
	}
	m := d.Metrics()
	if m.Failovers == 0 {
		t.Error("failover not counted")
	}
	if got := atomic.LoadInt32(&successorRuns) - runsBeforeKill; got != 1 {
		t.Errorf("successor saw %d submissions after the kill, want exactly the one recovery", got)
	}
}
