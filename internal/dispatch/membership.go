package dispatch

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/sljmotion/sljmotion/internal/jobs"
)

// Remote is a FleetManager: its worker topology mutates at runtime.
var _ jobs.FleetManager = (*Remote)(nil)

// maxNodeWeight bounds a single node's share of the ring so a typo'd join
// request cannot capture the whole key space.
const maxNodeWeight = 64

// view is one immutable routing snapshot of the fleet: the consistent-hash
// ring built over the routable (non-draining) members at one membership
// epoch. Mutations build a fresh view copy-on-write and swap the pointer;
// an in-flight submission keeps walking the view it grabbed, so a
// concurrent join or drain never re-routes it mid-walk.
type view struct {
	epoch    uint64
	ring     ring
	routable []*node // ring point indices map into this slice
}

// order returns the failover candidates for a key in ring order.
func (v *view) order(key uint64) []*node {
	idxs := v.ring.walk(key)
	out := make([]*node, len(idxs))
	for i, n := range idxs {
		out[i] = v.routable[n]
	}
	return out
}

// rebuildLocked constructs the routing view for the current membership,
// bumping the epoch. Draining nodes are excluded from the ring — no new
// keys route to them — but stay fleet members until their pending jobs
// finish. Caller holds mu.
func (r *Remote) rebuildLocked() {
	r.epoch++
	routable := make([]*node, 0, len(r.nodes))
	urls := make([]string, 0, len(r.nodes))
	weights := make([]int, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n.draining {
			continue
		}
		routable = append(routable, n)
		urls = append(urls, n.url)
		weights = append(weights, n.weight)
	}
	r.view = &view{
		epoch:    r.epoch,
		ring:     buildWeightedRing(urls, weights, r.cfg.Replicas),
		routable: routable,
	}
}

// Fleet reports the current membership (jobs.FleetManager).
func (r *Remote) Fleet() jobs.FleetView {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fleetLocked()
}

// fleetLocked snapshots membership into the wire schema. Caller holds mu.
func (r *Remote) fleetLocked() jobs.FleetView {
	v := jobs.FleetView{Epoch: r.epoch, Nodes: make([]jobs.FleetNode, 0, len(r.nodes))}
	for _, n := range r.nodes {
		v.Nodes = append(v.Nodes, jobs.FleetNode{
			URL:      n.url,
			Weight:   n.weight,
			Healthy:  n.healthy,
			Draining: n.draining,
			Pending:  r.pendingLocked(n),
		})
	}
	return v
}

// pendingLocked counts jobs routed to a node that have not been observed
// terminal. Caller holds mu.
func (r *Remote) pendingLocked(n *node) int {
	pending := 0
	for _, e := range r.entries {
		if e.node == n && !e.done {
			pending++
		}
	}
	return pending
}

// JoinNode admits a worker into the fleet after probing its health
// (jobs.FleetManager). A failed probe rejects the join with
// jobs.ErrNodeUnhealthy and leaves the membership untouched. Joining a URL
// that is already a member updates its weight and cancels a pending drain —
// the idempotent re-announce a restarted worker sends. Weight clamps to
// [1, 64]; zero means 1.
func (r *Remote) JoinNode(url string, weight int) (jobs.FleetView, error) {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	if url == "" {
		return jobs.FleetView{}, fmt.Errorf("dispatch: %w: empty node URL", jobs.ErrNodeUnhealthy)
	}
	if weight <= 0 {
		weight = 1
	}
	if weight > maxNodeWeight {
		weight = maxNodeWeight
	}
	// Probe outside the lock: admission must not stall routing.
	if err := r.probeOnce(url); err != nil {
		return jobs.FleetView{}, fmt.Errorf("dispatch: %s: %w: %v", url, jobs.ErrNodeUnhealthy, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return jobs.FleetView{}, jobs.ErrClosed
	}
	for _, n := range r.nodes {
		if n.url != url {
			continue
		}
		if n.weight == weight && !n.draining && n.healthy {
			return r.fleetLocked(), nil // no-op re-announce: keep the epoch
		}
		n.weight = weight
		n.draining = false
		n.healthy = true
		n.lastErr = ""
		r.rebuildLocked()
		r.log.Info("fleet member updated", "node", url, "weight", weight, "epoch", r.epoch)
		return r.fleetLocked(), nil
	}
	r.nodes = append(r.nodes, &node{url: url, healthy: true, weight: weight})
	r.rebuildLocked()
	r.log.Info("fleet member joined", "node", url, "weight", weight, "epoch", r.epoch)
	return r.fleetLocked(), nil
}

// probeOnce performs one admission health probe against the candidate's
// deep-health document: liveness (HTTP 200) admits only if the node does
// not report itself degraded — a worker with a stalled queue or a wedged
// drain must not be handed new keys. Bodies that do not parse as the
// deep-health schema stay admissible; liveness alone vouches for them.
func (r *Remote) probeOnce(url string) error {
	resp, err := r.client.Get(url + "/v1/healthz")
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var doc struct {
		Status string `json:"status"`
	}
	if json.Unmarshal(raw, &doc) == nil && doc.Status != "" && doc.Status != jobs.HealthOK {
		return fmt.Errorf("node reports deep health %q", doc.Status)
	}
	return nil
}

// DrainNode starts a graceful drain (jobs.FleetManager): the node leaves
// the ring immediately — no new keys route to it — while its running jobs
// finish; the health loop removes it once none remain pending. Draining the
// last routable node is refused with jobs.ErrLastNode.
func (r *Remote) DrainNode(url string) (jobs.FleetView, error) {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return jobs.FleetView{}, jobs.ErrClosed
	}
	for _, n := range r.nodes {
		if n.url != url {
			continue
		}
		if n.draining {
			return r.fleetLocked(), nil // idempotent
		}
		others := 0
		for _, o := range r.nodes {
			if o != n && !o.draining {
				others++
			}
		}
		if others == 0 {
			return jobs.FleetView{}, fmt.Errorf("dispatch: %s: %w", url, jobs.ErrLastNode)
		}
		n.draining = true
		n.drainPending = r.pendingLocked(n)
		n.drainChanged = r.clock()
		r.rebuildLocked()
		r.log.Info("fleet member draining", "node", url, "pending", n.drainPending, "epoch", r.epoch)
		return r.fleetLocked(), nil
	}
	return jobs.FleetView{}, fmt.Errorf("dispatch: %s: %w", url, jobs.ErrNodeUnknown)
}

// RemoveNode drops a member immediately (jobs.FleetManager), pending jobs
// or not — the force path for a node that died while draining. Jobs still
// routed to it fail over on their next poll (and recover from the ring
// successor when replication is on).
func (r *Remote) RemoveNode(url string) (jobs.FleetView, error) {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return jobs.FleetView{}, jobs.ErrClosed
	}
	for i, n := range r.nodes {
		if n.url != url {
			continue
		}
		r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
		r.rebuildLocked()
		r.log.Info("fleet member removed", "node", url, "epoch", r.epoch)
		return r.fleetLocked(), nil
	}
	return jobs.FleetView{}, fmt.Errorf("dispatch: %s: %w", url, jobs.ErrNodeUnknown)
}

// finalizeDrains removes draining members whose pending count reached zero.
// Run by the health loop each cycle, so a drained node disappears from the
// fleet within one interval of its last job finishing.
func (r *Remote) finalizeDrains() {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.nodes[:0]
	removed := 0
	for _, n := range r.nodes {
		if n.draining && r.pendingLocked(n) == 0 {
			removed++
			r.log.Info("fleet drain complete", "node", n.url)
			continue
		}
		kept = append(kept, n)
	}
	if removed == 0 {
		return
	}
	r.nodes = kept
	r.rebuildLocked()
}
