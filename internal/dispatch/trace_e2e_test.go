package dispatch_test

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/e2etest"
	"github.com/sljmotion/sljmotion/internal/obs"
	"github.com/sljmotion/sljmotion/internal/synth"
)

// fetchTrace GETs a node's trace route for the job, returning the decoded
// document and status code.
func fetchTrace(t *testing.T, base, id string) (*obs.TraceDoc, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var doc obs.TraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return &doc, resp.StatusCode
}

// firstNamed returns the first span with the given name, depth-first.
func firstNamed(s *obs.SpanDoc, name string) *obs.SpanDoc {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := firstNamed(c, name); hit != nil {
			return hit
		}
	}
	return nil
}

// TestTracePropagationAcrossDispatch is the acceptance test of cross-node
// tracing: a job submitted through the two-node front end yields ONE
// coherent trace — the dispatch root's submit attempt carries the
// traceparent header to the worker, the worker's own job tree adopts that
// trace id, and the front end's /trace document grafts the worker tree
// under the submit span that routed it.
func TestTracePropagationAcrossDispatch(t *testing.T) {
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := newNode(t)
	n2, _ := newNode(t)
	fe := newFrontend(t, []string{n1.URL, n2.URL})

	doc, raw, code := e2etest.Submit(t, fe.URL, v, "segmentation", true)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, raw)
	}
	e2etest.PollResult(t, fe.URL, doc.ResultURL, 30*time.Second)

	trace, code := fetchTrace(t, fe.URL, doc.ID)
	if code != http.StatusOK {
		t.Fatalf("front-end trace route: %d", code)
	}
	root := trace.Root
	if root == nil || root.Name != "dispatch" {
		t.Fatalf("front-end root span %+v, want name \"dispatch\"", root)
	}
	if trace.JobID != doc.ID {
		t.Errorf("trace job_id = %q, want %q", trace.JobID, doc.ID)
	}

	// Exactly one submit attempt carries the worker's grafted job tree.
	var submit, workerJob *obs.SpanDoc
	for _, c := range root.Children {
		if c.Name != "submit" {
			continue
		}
		if j := firstNamed(c, "job"); j != nil {
			if workerJob != nil {
				t.Fatal("worker job tree grafted under two submit attempts")
			}
			submit, workerJob = c, j
		}
	}
	if workerJob == nil {
		t.Fatalf("no worker job tree grafted under any submit span (root children: %d)", len(root.Children))
	}
	if workerJob.ParentID != submit.SpanID {
		t.Errorf("grafted job parent_id %q, want the submit span %q (fallback graft?)", workerJob.ParentID, submit.SpanID)
	}

	// The worker tree is the full remote execution: queue wait, the run
	// with its stage spans, and the worker-side publish.
	for _, name := range []string{"queue_wait", "run", "publish"} {
		if firstNamed(workerJob, name) == nil {
			t.Errorf("worker job tree lacks a %s span", name)
		}
	}
	run := firstNamed(workerJob, "run")
	if run != nil && firstNamed(run, "segmentation") == nil {
		t.Error("worker run span lacks the segmentation stage child")
	}

	// Duration coherence: the dispatch root brackets the whole round trip
	// — it ends when the front end observes the terminal event, after the
	// worker job finished — so it must cover the grafted tree's duration.
	if root.InFlight {
		t.Error("dispatch root still in flight after the job finished")
	}
	if workerJob.InFlight {
		t.Error("worker job span still in flight after the job finished")
	}
	if root.DurationMS < workerJob.DurationMS-1 {
		t.Errorf("dispatch root %.2fms shorter than the worker job %.2fms", root.DurationMS, workerJob.DurationMS)
	}

	// The worker that ran the job serves the same trace under the same id:
	// the traceparent header propagated, no fresh trace was started.
	var workerTrace *obs.TraceDoc
	for _, node := range []string{n1.URL, n2.URL} {
		if d, code := fetchTrace(t, node, doc.ID); code == http.StatusOK {
			workerTrace = d
			break
		}
	}
	if workerTrace == nil {
		t.Fatal("neither worker node serves the job's trace")
	}
	if workerTrace.TraceID != trace.TraceID {
		t.Errorf("worker trace id %q != front-end trace id %q: traceparent not propagated", workerTrace.TraceID, trace.TraceID)
	}
	if workerTrace.Root.ParentID != submit.SpanID {
		t.Errorf("worker root parent_id %q, want the submit span %q", workerTrace.Root.ParentID, submit.SpanID)
	}
}
