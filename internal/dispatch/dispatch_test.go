package dispatch

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/sljmotion/sljmotion/internal/jobs"
)

func TestConfigValidate(t *testing.T) {
	// An empty node list is valid: an elastic fleet may start with zero
	// members and grow via JoinNode. Submits against it fail with
	// ErrQueueFull until a node joins.
	r, err := New(Config{})
	if err != nil {
		t.Fatalf("New must accept an empty fleet, got %v", err)
	}
	defer r.Close(context.Background())
	if _, err := r.Submit(jobs.Payload{}); !errors.Is(err, jobs.ErrQueueFull) {
		t.Errorf("submit on an empty fleet = %v, want ErrQueueFull", err)
	}
	if _, err := New(Config{Nodes: []string{""}}); err == nil {
		t.Error("New must reject empty node URLs")
	}
}

// TestRingStableRouting pins the consistent-hashing properties: a key's
// primary node is deterministic, every node owns a share of the key space,
// and removing one node only re-homes that node's keys.
func TestRingStableRouting(t *testing.T) {
	urls := []string{"http://a", "http://b", "http://c"}
	r := buildRing(urls, 64)

	hits := make([]int, len(urls))
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := hashString("clip-" + strconv.Itoa(i))
		order := r.walk(key)
		if len(order) != len(urls) {
			t.Fatalf("walk must cover all nodes, got %v", order)
		}
		// Deterministic.
		if again := r.walk(key); again[0] != order[0] {
			t.Fatal("primary node not deterministic")
		}
		hits[order[0]]++
	}
	for n, h := range hits {
		if h < keys/len(urls)/3 {
			t.Errorf("node %d owns %d/%d keys — distribution badly skewed", n, h, keys)
		}
	}

	// Failover stability: skipping the primary (dead node) must fall to the
	// walk's second entry, and keys whose primary is alive are unaffected.
	dead := 0
	for i := 0; i < 200; i++ {
		key := hashString("clip-" + strconv.Itoa(i))
		order := r.walk(key)
		if order[0] == dead && order[1] == dead {
			t.Fatal("failover order repeats the dead node")
		}
		if order[0] != dead {
			// Unaffected key: its primary stays its primary.
			if r.walk(key)[0] != order[0] {
				t.Fatal("live key re-homed by unrelated death")
			}
		}
	}
}

// TestSubmitBusyPropagatesRetryAfter turns a worker's 503 + Retry-After
// into retryable backpressure carrying the node's hint.
func TestSubmitBusyPropagatesRetryAfter(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"jobs: queue full, retry later"}`)
	}))
	defer busy.Close()

	d, err := New(Config{Nodes: []string{busy.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	_, err = d.Submit(jobs.Payload{Kind: jobs.KindAnalysis, CacheKey: "ab"})
	if !jobs.Retryable(err) {
		t.Fatalf("busy worker error %v must be retryable", err)
	}
	if got := jobs.RetryAfterHint(err, 1); got != 7 {
		t.Errorf("RetryAfterHint = %d, want the node's 7", got)
	}
	m := d.Metrics()
	if len(m.Nodes) != 1 || m.Nodes[0].Rejected != 1 || m.Rejected != 1 {
		t.Errorf("rejection not counted: %+v", m.Nodes)
	}
}

// TestSubmitFailsOverBusyNode: a saturated primary's 503 must not fail the
// submission while a healthy ring successor sits idle — the payload fails
// over exactly like it does on a transport error, whichever of the two
// nodes the ring picks first.
func TestSubmitFailsOverBusyNode(t *testing.T) {
	busyHits := 0
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		busyHits++
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"jobs: queue full, retry later"}`)
	}))
	defer busy.Close()
	accepted := 0
	idle := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		accepted++
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"beef%012d","state":"queued"}`, accepted)
	}))
	defer idle.Close()

	d, err := New(Config{Nodes: []string{busy.URL, idle.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	// Across many keys some are primarily homed on the busy node; every
	// submission must still land on the idle successor.
	for i := 0; i < 8; i++ {
		if _, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis, CacheKey: strconv.Itoa(i)}); err != nil {
			t.Fatalf("submit %d failed despite an idle healthy node: %v", i, err)
		}
	}
	if accepted != 8 {
		t.Errorf("idle node accepted %d/8", accepted)
	}
	if busyHits == 0 {
		t.Error("ring never tried the busy primary — test proves nothing")
	}
	m := d.Metrics()
	for _, n := range m.Nodes {
		if n.URL == busy.URL {
			if !n.Healthy {
				t.Error("busy node must stay healthy (saturated, not dead)")
			}
			if n.Rejected == 0 {
				t.Error("busy node rejections not counted")
			}
		}
	}
}

// TestSubmitAllBusySurfacesSmallestHint: only when every healthy candidate
// rejects does BusyError surface, carrying the smallest positive
// Retry-After across the pool.
func TestSubmitAllBusySurfacesSmallestHint(t *testing.T) {
	mkBusy := func(after string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if after != "" {
				w.Header().Set("Retry-After", after)
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"jobs: queue full, retry later"}`)
		}))
	}
	b1, b2, b3 := mkBusy("9"), mkBusy("3"), mkBusy("")
	defer b1.Close()
	defer b2.Close()
	defer b3.Close()

	d, err := New(Config{Nodes: []string{b1.URL, b2.URL, b3.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	_, err = d.Submit(jobs.Payload{Kind: jobs.KindAnalysis, CacheKey: "ff"})
	if !jobs.Retryable(err) {
		t.Fatalf("all-busy submit error %v must be retryable", err)
	}
	if got := jobs.RetryAfterHint(err, 0); got != 3 {
		t.Errorf("RetryAfterHint = %d, want the smallest positive hint 3", got)
	}
	if m := d.Metrics(); m.Rejected != 3 {
		t.Errorf("fleet rejections = %d, want one per node", m.Rejected)
	}
}

// TestSubmitFailsOverDeadNode: a transport error on the primary demotes it
// and the payload lands on the next ring node.
func TestSubmitFailsOverDeadNode(t *testing.T) {
	accepted := 0
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		accepted++
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintln(w, `{"id":"deadbeef00000001","state":"queued"}`)
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // immediately unreachable

	d, err := New(Config{Nodes: []string{dead.URL, live.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	// Submit enough distinct keys that at least one is primarily homed on
	// the dead node; all must succeed via failover.
	for i := 0; i < 8; i++ {
		if _, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis, CacheKey: strconv.Itoa(i)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if accepted != 8 {
		t.Errorf("live node accepted %d/8", accepted)
	}
	m := d.Metrics()
	var deadM, liveM *jobs.NodeMetrics
	for i := range m.Nodes {
		switch m.Nodes[i].URL {
		case dead.URL:
			deadM = &m.Nodes[i]
		case live.URL:
			liveM = &m.Nodes[i]
		}
	}
	if deadM == nil || liveM == nil {
		t.Fatalf("node metrics missing: %+v", m.Nodes)
	}
	if deadM.Healthy || deadM.LastError == "" {
		t.Errorf("dead node should be demoted with an error: %+v", deadM)
	}
	if liveM.Submitted != 8 {
		t.Errorf("live node submitted = %d, want 8", liveM.Submitted)
	}
	if m.Workers != 1 {
		t.Errorf("healthy workers = %d, want 1", m.Workers)
	}
}

// TestSubmitAllNodesDown answers retryable backpressure, not a hard error.
func TestSubmitAllNodesDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	d, err := New(Config{Nodes: []string{dead.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())
	if _, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis}); !jobs.Retryable(err) {
		t.Errorf("all-down submit error %v must be retryable", err)
	}
}

// TestUnknownJobID: ids the dispatcher never routed are ErrNotFound.
func TestUnknownJobID(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer live.Close()
	d, err := New(Config{Nodes: []string{live.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())
	if _, err := d.Status("deadbeef"); !errors.Is(err, jobs.ErrNotFound) {
		t.Errorf("status of unknown id = %v, want ErrNotFound", err)
	}
	if _, err := d.Result("deadbeef"); !errors.Is(err, jobs.ErrNotFound) {
		t.Errorf("result of unknown id = %v, want ErrNotFound", err)
	}
}

// TestSweepSparesRunningJobs pins the Manager-matching TTL semantics: a
// routed job still running on its worker is never evicted by ResultTTL
// (which counts from the observed terminal state, not from submission).
func TestSweepSparesRunningJobs(t *testing.T) {
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintln(w, `{"id":"feedface00000001","state":"queued"}`)
		default:
			fmt.Fprintln(w, `{"id":"feedface00000001","state":"running","created_at":"2026-01-01T00:00:00Z"}`)
		}
	}))
	defer worker.Close()

	clk := struct {
		mu  sync.Mutex
		now time.Time
	}{now: time.Unix(1_000_000, 0)}
	now := func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		return clk.now
	}
	advance := func(d time.Duration) {
		clk.mu.Lock()
		clk.now = clk.now.Add(d)
		clk.mu.Unlock()
	}

	d, err := New(Config{
		Nodes:          []string{worker.URL},
		HealthInterval: time.Hour,
		ResultTTL:      time.Minute,
		Clock:          now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	id, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis})
	if err != nil {
		t.Fatal(err)
	}
	// Far past the TTL while the worker still reports running: the record
	// must survive, so polling keeps working.
	advance(5 * time.Minute)
	st, err := d.Status(id)
	if err != nil {
		t.Fatalf("running job evicted by TTL sweep: %v", err)
	}
	if st.State != jobs.StateRunning {
		t.Errorf("state = %s, want running", st.State)
	}
	// But a record that never terminates is still bounded (8× TTL).
	advance(10 * time.Minute)
	if _, err := d.Status(id); !errors.Is(err, jobs.ErrNotFound) {
		t.Errorf("abandoned record must eventually evict, got %v", err)
	}
}

// TestQueueDepthConvergesWithoutPolling: jobs that finish on their worker
// but are never polled by a client must not inflate queue_depth until the
// record TTL sweep — the health cycle resolves their terminal state.
func TestQueueDepthConvergesWithoutPolling(t *testing.T) {
	var mu sync.Mutex
	states := map[string]string{}
	next := 0
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case r.Method == http.MethodPost:
			next++
			id := fmt.Sprintf("cafe%012d", next)
			// The worker finishes instantly: submitted work is already
			// done by the time anyone could ask.
			states[id] = "done"
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"id":%q,"state":"queued"}`, id)
		case r.URL.Path == "/v1/healthz":
			fmt.Fprintln(w, `{"status":"ok"}`)
		default:
			id := r.URL.Path[len("/v1/jobs/"):]
			st, ok := states[id]
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				fmt.Fprintln(w, `{"error":"jobs: no such job"}`)
				return
			}
			fmt.Fprintf(w, `{"id":%q,"state":%q,"created_at":"2026-01-01T00:00:00Z"}`, id, st)
		}
	}))
	defer worker.Close()

	d, err := New(Config{Nodes: []string{worker.URL}, HealthInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(context.Background())

	for i := 0; i < 3; i++ {
		if _, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis, CacheKey: strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// No Status/Result calls from here on: only the health cycle may
	// resolve the records.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := d.Metrics()
		if m.QueueDepth == 0 {
			if m.Completed != 3 {
				t.Errorf("resolved jobs not counted completed: %+v", m)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue_depth stuck at %d without client polling", m.QueueDepth)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The resolved jobs show up terminal in the listing too.
	done := d.Jobs(jobs.JobFilter{State: jobs.StateDone})
	if len(done) != 3 {
		t.Errorf("listing shows %d done jobs, want 3", len(done))
	}
}

// TestClosedRejectsSubmit: Close stops intake with ErrClosed.
func TestClosedRejectsSubmit(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer live.Close()
	d, err := New(Config{Nodes: []string{live.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(jobs.Payload{Kind: jobs.KindAnalysis}); !errors.Is(err, jobs.ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
	// Idempotent.
	if err := d.Close(context.Background()); err != nil {
		t.Errorf("second close: %v", err)
	}
}
