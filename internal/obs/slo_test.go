package obs

// Tests for the lock-free SLO tracker: window accounting under an
// injected clock, burn-rate arithmetic, slot reclamation as minutes roll
// past the ring, nil-safety, and concurrent observation under -race.

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// sloAt builds a tracker pinned to a mutable fake clock.
func sloAt(objective time.Duration, target float64) (*SLO, *time.Time) {
	s := NewSLO(objective, target)
	now := time.Unix(1_700_000_000, 0)
	s.SetClock(func() time.Time { return now })
	return s, &now
}

func TestSLOWindowCounts(t *testing.T) {
	s, now := sloAt(2*time.Second, 0.99)

	// Three good jobs, one failure, one latency miss.
	s.Observe(100*time.Millisecond, true)
	s.Observe(time.Second, true)
	s.Observe(1999*time.Millisecond, true)
	s.Observe(50*time.Millisecond, false)
	s.Observe(3*time.Second, true)

	total, bad := s.Window(SLOWindowShort)
	if total != 5 || bad != 2 {
		t.Fatalf("5m window = (%d, %d), want (5, 2)", total, bad)
	}

	// Bad ratio 2/5 = 0.4 against a budget of 0.01: burn 40.
	if burn := s.Burn(SLOWindowShort); burn < 39.9 || burn > 40.1 {
		t.Errorf("burn = %v, want 40", burn)
	}

	// Six minutes later the 5m window is empty but the 1h window still
	// holds everything.
	*now = now.Add(6 * time.Minute)
	if total, bad = s.Window(SLOWindowShort); total != 0 || bad != 0 {
		t.Errorf("5m window after 6 minutes = (%d, %d), want empty", total, bad)
	}
	if total, bad = s.Window(SLOWindowLong); total != 5 || bad != 2 {
		t.Errorf("1h window after 6 minutes = (%d, %d), want (5, 2)", total, bad)
	}
	if burn := s.Burn(SLOWindowShort); burn != 0 {
		t.Errorf("burn over an empty window = %v, want 0", burn)
	}
}

func TestSLOZeroObjectiveOnlyCountsFailures(t *testing.T) {
	s, _ := sloAt(0, 0.99)
	s.Observe(time.Hour, true) // arbitrarily slow but successful: still good
	s.Observe(time.Millisecond, false)
	total, bad := s.Window(SLOWindowShort)
	if total != 2 || bad != 1 {
		t.Fatalf("window = (%d, %d), want (2, 1)", total, bad)
	}
}

func TestSLOTargetClamped(t *testing.T) {
	if got := NewSLO(0, 0.1).Target(); got != 0.5 {
		t.Errorf("target 0.1 clamps to %v, want 0.5", got)
	}
	if got := NewSLO(0, 1.0).Target(); got != 0.9999 {
		t.Errorf("target 1.0 clamps to %v, want 0.9999", got)
	}
}

func TestSLOSlotReclamation(t *testing.T) {
	s, now := sloAt(0, 0.99)
	s.Observe(0, false)

	// Advance past the whole ring: the old slot's epoch is stale, so the
	// next observation in the colliding slot must reset it rather than
	// inherit the old counters, and the old observation must leave every
	// window.
	*now = now.Add(sloSlots * time.Minute)
	s.Observe(0, true)
	total, bad := s.Window(SLOWindowLong)
	if total != 1 || bad != 0 {
		t.Fatalf("window after ring wrap = (%d, %d), want (1, 0)", total, bad)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe(time.Second, false)
	s.SetClock(time.Now)
	if total, bad := s.Window(SLOWindowShort); total != 0 || bad != 0 {
		t.Error("nil tracker window not empty")
	}
	if s.Burn(SLOWindowShort) != 0 || s.Objective() != 0 || s.Target() != 0 {
		t.Error("nil tracker accessors not zero")
	}
	if s.Doc() != nil {
		t.Error("nil tracker Doc() != nil")
	}
	s.WritePrometheus(nil) // must not panic: nil receiver returns early
}

func TestSLODoc(t *testing.T) {
	s, _ := sloAt(1500*time.Millisecond, 0.95)
	s.Observe(time.Second, true)
	s.Observe(2*time.Second, true)
	doc := s.Doc()
	if doc.ObjectiveMS != 1500 || doc.Target != 0.95 {
		t.Errorf("doc objective/target = %v/%v, want 1500/0.95", doc.ObjectiveMS, doc.Target)
	}
	if doc.Jobs5m != 2 || doc.Bad5m != 1 || doc.Jobs1h != 2 || doc.Bad1h != 1 {
		t.Errorf("doc counts = %+v, want 2 jobs / 1 bad in both windows", doc)
	}
	// 0.5 bad ratio over a 0.05 budget: burn 10.
	if doc.Burn5m < 9.9 || doc.Burn5m > 10.1 {
		t.Errorf("doc burn5m = %v, want 10", doc.Burn5m)
	}
}

func TestSLOWritePrometheusLints(t *testing.T) {
	s, _ := sloAt(2*time.Second, 0.99)
	s.Observe(time.Second, true)
	s.Observe(time.Second, false)

	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	s.WritePrometheus(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	res := LintExposition(buf.Bytes(), []string{
		"slj_slo_objective_latency_seconds", "slj_slo_target_ratio",
		"slj_slo_window_jobs", "slj_slo_window_bad_jobs", "slj_slo_error_budget_burn",
	})
	if len(res.Issues) != 0 {
		t.Fatalf("SLO exposition fails lint:\n%s", strings.Join(res.Issues, "\n"))
	}
	burns := map[string]float64{}
	for _, smp := range res.Samples {
		if smp.Name == "slj_slo_error_budget_burn" {
			burns[smp.Labels["window"]] = smp.Value
		}
	}
	if len(burns) != 2 {
		t.Fatalf("burn windows %v, want 5m and 1h", burns)
	}
	// Bad ratio 1/2 over budget 0.01: burn 50 in both windows.
	for w, v := range burns {
		if v < 49.9 || v > 50.1 {
			t.Errorf("burn[%s] = %v, want 50", w, v)
		}
	}
}

// TestSLOConcurrentObserve exercises the atomic ring under -race: many
// goroutines observing while a reader sums windows.
func TestSLOConcurrentObserve(t *testing.T) {
	s := NewSLO(time.Second, 0.99)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Observe(time.Duration(i)*time.Millisecond, i%2 == 0)
				if i%64 == 0 {
					s.Window(SLOWindowShort)
					s.Burn(SLOWindowLong)
				}
			}
		}(g)
	}
	wg.Wait()
	total, _ := s.Window(SLOWindowLong)
	if total != goroutines*perG {
		t.Fatalf("window total = %d, want %d", total, goroutines*perG)
	}
}
