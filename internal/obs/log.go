// log/slog construction helpers shared by the binaries and the server:
// level/format flag parsing and a discard logger for quiet embedders.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a structured logger writing to w. level is one of
// debug, info, warn, error (case-insensitive); format is text or json.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// Discard returns a logger that drops everything — the default for
// library embedders that did not ask for logs.
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
