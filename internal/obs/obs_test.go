package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	_, root := NewTrace("job")
	sc := root.Context()
	if !sc.Valid() {
		t.Fatalf("fresh span context invalid: %+v", sc)
	}
	hdr := sc.Traceparent()
	got, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected", hdr)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"01-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // unknown version
		"00-0123456789ABCDEF0123456789abcdef-0123456789abcdef-01", // uppercase
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span id
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef",    // missing flags
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", s)
		}
	}
}

func TestNewTraceFromAdoptsParent(t *testing.T) {
	_, remote := NewTrace("dispatch")
	parent := remote.Context()
	tr, root := NewTraceFrom(parent, "job")
	if tr.TraceID() != parent.TraceID {
		t.Fatalf("child trace id %s, want parent's %s", tr.TraceID(), parent.TraceID)
	}
	doc := tr.Doc("j1")
	if doc.Root.ParentID != parent.SpanID {
		t.Fatalf("root parent id %s, want %s", doc.Root.ParentID, parent.SpanID)
	}
	root.End()
}

func TestSpanTreeDoc(t *testing.T) {
	tr, root := NewTrace("job")
	root.SetAttr("job_id", "j42")
	q := root.Start("queue_wait")
	time.Sleep(2 * time.Millisecond)
	q.End()
	run := root.Start("run")
	seg := run.Start("segmentation")
	seg.End()
	run.End()
	root.End()

	doc := tr.Doc("j42")
	if doc.JobID != "j42" || doc.Root == nil {
		t.Fatalf("doc: %+v", doc)
	}
	if doc.Root.Name != "job" || doc.Root.Attrs["job_id"] != "j42" {
		t.Fatalf("root: %+v", doc.Root)
	}
	if len(doc.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(doc.Root.Children))
	}
	if doc.Root.Children[0].Name != "queue_wait" || doc.Root.Children[0].DurationMS <= 0 {
		t.Fatalf("queue_wait child: %+v", doc.Root.Children[0])
	}
	runDoc := doc.Root.Children[1]
	if runDoc.Name != "run" || len(runDoc.Children) != 1 || runDoc.Children[0].Name != "segmentation" {
		t.Fatalf("run child: %+v", runDoc)
	}
	if runDoc.ParentID != doc.Root.SpanID {
		t.Fatalf("run parent %s, want root %s", runDoc.ParentID, doc.Root.SpanID)
	}
	if doc.Root.InFlight {
		t.Fatal("ended root reported in flight")
	}
}

func TestStartSpanNoOpWithoutParent(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "segmentation")
	if sp != nil {
		t.Fatal("StartSpan on bare context returned a live span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan on bare context derived a new context")
	}
	// All methods must be nil-safe.
	sp.SetAttr("k", "v")
	sp.End()
	if got := sp.Context(); got.Valid() {
		t.Fatalf("nil span context valid: %+v", got)
	}
}

func TestStartSpanAttachesChild(t *testing.T) {
	tr, root := NewTrace("job")
	ctx := ContextWithSpan(context.Background(), root)
	ctx2, sp := StartSpan(ctx, "run")
	if sp == nil {
		t.Fatal("StartSpan returned nil under a live parent")
	}
	if SpanFromContext(ctx2) != sp {
		t.Fatal("derived context does not carry the child span")
	}
	sp.End()
	root.End()
	doc := tr.Doc("")
	if len(doc.Root.Children) != 1 || doc.Root.Children[0].Name != "run" {
		t.Fatalf("children: %+v", doc.Root.Children)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr, root := NewTrace("job")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := root.Start("ga_fit")
			s.SetAttr("frame", "x")
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	if n := len(tr.Doc("").Root.Children); n != 16 {
		t.Fatalf("children = %d, want 16", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("slj_test_seconds", "test.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	pw := NewPromWriter(&buf)
	r.WritePrometheus(pw)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE slj_test_seconds histogram",
		`slj_test_seconds_bucket{le="0.01"} 1`,
		`slj_test_seconds_bucket{le="0.1"} 2`,
		`slj_test_seconds_bucket{le="1"} 3`,
		`slj_test_seconds_bucket{le="+Inf"} 4`,
		"slj_test_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("slj_edge_seconds", "test.", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	var buf bytes.Buffer
	pw := NewPromWriter(&buf)
	r.WritePrometheus(pw)
	if !strings.Contains(buf.String(), `slj_edge_seconds_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation not in le=\"1\":\n%s", buf.String())
	}
}

func TestLabelledHistogramFamilies(t *testing.T) {
	r := NewRegistry()
	seg := r.Histogram("slj_stage_seconds", "stage time.", []float64{1}, "stage", "segmentation")
	pose := r.Histogram("slj_stage_seconds", "stage time.", []float64{1}, "stage", "pose")
	if seg == pose {
		t.Fatal("distinct label sets share one histogram")
	}
	if again := r.Histogram("slj_stage_seconds", "stage time.", []float64{1}, "stage", "segmentation"); again != seg {
		t.Fatal("re-registration did not return the existing histogram")
	}
	seg.Observe(0.5)
	pose.Observe(2)
	var buf bytes.Buffer
	pw := NewPromWriter(&buf)
	r.WritePrometheus(pw)
	out := buf.String()
	if strings.Count(out, "# TYPE slj_stage_seconds histogram") != 1 {
		t.Fatalf("family header repeated:\n%s", out)
	}
	for _, want := range []string{
		`slj_stage_seconds_bucket{stage="segmentation",le="1"} 1`,
		`slj_stage_seconds_bucket{stage="pose",le="1"} 0`,
		`slj_stage_seconds_bucket{stage="pose",le="+Inf"} 1`,
		`slj_stage_seconds_count{stage="pose"} 1`,
		`slj_stage_seconds_sum{stage="segmentation"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestPromWriterFamiliesAndEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("slj_cache_requests_total", "Cache lookups.", 3, "result", "hit")
	p.Counter("slj_cache_requests_total", "Cache lookups.", 1, "result", `mi"ss`)
	p.Gauge("slj_jobs_queued", "Queued jobs.", 2)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE slj_cache_requests_total counter") != 1 {
		t.Fatalf("family header not deduplicated:\n%s", out)
	}
	if !strings.Contains(out, `slj_cache_requests_total{result="hit"} 3`) {
		t.Fatalf("labelled sample missing:\n%s", out)
	}
	if !strings.Contains(out, `result="mi\"ss"`) {
		t.Fatalf("label escaping missing:\n%s", out)
	}
	if !strings.Contains(out, "slj_jobs_queued 2\n") {
		t.Fatalf("gauge sample missing:\n%s", out)
	}
}

func TestWriteRuntimeEmitsGaugeSet(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.WriteRuntime()
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"slj_runtime_goroutines",
		"slj_runtime_heap_objects_bytes",
		"slj_runtime_gc_cycles_total",
		"slj_runtime_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime export missing %q", want)
		}
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("shown", "job_id", "j1")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("debug line emitted at info level")
	}
	if !strings.Contains(out, `"job_id":"j1"`) {
		t.Fatalf("json attrs missing: %s", out)
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
}
