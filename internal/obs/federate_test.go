package obs

// Tests for the federation merger and the exposition conformance lint it
// shares with the server scrape test and the slj-promlint command.

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// nodeExposition renders a small per-node scrape through the real writer,
// so merge inputs obey the same grammar production code emits.
func nodeExposition(t *testing.T, jobs float64, latencies []float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("slj_jobs_submitted_total", "Jobs accepted into the queue.", jobs)
	p.Gauge("slj_jobs_queue_depth", "Jobs currently waiting in the queue.", 0)
	reg := NewRegistry()
	h := reg.Histogram("slj_job_run_seconds", "Job run time.", DefBuckets)
	for _, l := range latencies {
		h.Observe(l)
	}
	reg.WritePrometheus(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMergeExpositionsInjectsNodeLabels(t *testing.T) {
	merged, err := MergeExpositions([]ScrapedNode{
		{Node: "http://b:8080", Exposition: nodeExposition(t, 3, []float64{0.2})},
		{Node: "http://a:8080", Exposition: nodeExposition(t, 5, []float64{0.1, 0.9})},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The merged scrape must itself pass the conformance lint, with the
	// fleet bookkeeping families present.
	res := LintExposition(merged, []string{
		"slj_fleet_members", "slj_fleet_scrape_ok",
		"slj_jobs_submitted_total", "slj_job_run_seconds",
	})
	if len(res.Issues) != 0 {
		t.Fatalf("merged exposition fails lint:\n%s\n--- scrape ---\n%s",
			strings.Join(res.Issues, "\n"), merged)
	}

	// Every non-fleet sample carries its origin node, and the per-node
	// values survive the merge unchanged.
	byNode := map[string]float64{}
	for _, s := range res.Samples {
		switch s.Name {
		case "slj_fleet_members":
			if s.Value != 2 {
				t.Errorf("slj_fleet_members = %v, want 2", s.Value)
			}
		case "slj_fleet_scrape_ok":
			if s.Value != 1 {
				t.Errorf("scrape_ok[%s] = %v, want 1", s.Labels["node"], s.Value)
			}
		default:
			if s.Labels["node"] == "" {
				t.Errorf("sample %s has no node label: %v", s.Name, s.Labels)
			}
			if s.Name == "slj_jobs_submitted_total" {
				byNode[s.Labels["node"]] = s.Value
			}
		}
	}
	if byNode["http://a:8080"] != 5 || byNode["http://b:8080"] != 3 {
		t.Errorf("per-node submitted counters %v, want a=5 b=3", byNode)
	}

	// Histogram series stay disjoint per node: both nodes' _count present.
	counts := 0
	for _, s := range res.Samples {
		if s.Name == "slj_job_run_seconds_count" {
			counts++
		}
	}
	if counts != 2 {
		t.Errorf("%d slj_job_run_seconds_count series, want one per node", counts)
	}
}

func TestMergeExpositionsDeterministicOrder(t *testing.T) {
	nodes := []ScrapedNode{
		{Node: "http://b:8080", Exposition: nodeExposition(t, 1, nil)},
		{Node: "http://a:8080", Exposition: nodeExposition(t, 2, nil)},
	}
	first, err := MergeExpositions(nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed input order must render byte-identical output: nodes are
	// visited sorted by name.
	second, err := MergeExpositions([]ScrapedNode{nodes[1], nodes[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("merged output depends on input order")
	}
}

func TestMergeExpositionsFailedScrape(t *testing.T) {
	merged, err := MergeExpositions([]ScrapedNode{
		{Node: "http://ok:8080", Exposition: nodeExposition(t, 1, nil)},
		{Node: "http://down:8080", Err: errors.New("connection refused")},
		{Node: "http://garbled:8080", Exposition: []byte("not a scrape at all {{{")},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := LintExposition(merged, nil)
	if len(res.Issues) != 0 {
		t.Fatalf("merged exposition fails lint:\n%s", strings.Join(res.Issues, "\n"))
	}
	ok := map[string]float64{}
	for _, s := range res.Samples {
		if s.Name == "slj_fleet_scrape_ok" {
			ok[s.Labels["node"]] = s.Value
		}
		if s.Labels["node"] == "http://down:8080" && s.Name != "slj_fleet_scrape_ok" {
			t.Errorf("failed node contributed sample %s", s.Name)
		}
	}
	want := map[string]float64{"http://ok:8080": 1, "http://down:8080": 0, "http://garbled:8080": 0}
	for node, v := range want {
		if ok[node] != v {
			t.Errorf("scrape_ok[%s] = %v, want %v", node, ok[node], v)
		}
	}
}

func TestMergeExpositionsTypeMismatch(t *testing.T) {
	a := []byte("# HELP slj_thing A thing.\n# TYPE slj_thing gauge\nslj_thing 1\n")
	b := []byte("# HELP slj_thing A thing.\n# TYPE slj_thing counter\nslj_thing 2\n")
	merged, err := MergeExpositions([]ScrapedNode{
		{Node: "http://a:8080", Exposition: a},
		{Node: "http://b:8080", Exposition: b},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The mismatching member is folded like a failed scrape, not merged.
	res := LintExposition(merged, nil)
	for _, s := range res.Samples {
		if s.Name == "slj_fleet_scrape_ok" && s.Labels["node"] == "http://b:8080" && s.Value != 0 {
			t.Error("type-mismatched node still reported as scraped ok")
		}
		if s.Name == "slj_thing" && s.Labels["node"] == "http://b:8080" {
			t.Error("type-mismatched node's sample leaked into the merge")
		}
	}
}

func TestLintExpositionCatchesViolations(t *testing.T) {
	cases := []struct {
		name, raw, want string
	}{
		{"counter suffix", "# HELP bad_counter x\n# TYPE bad_counter counter\nbad_counter 1\n", "not named *_total"},
		{"duplicate type", "# HELP a_total x\n# TYPE a_total counter\n# HELP a_total x\n# TYPE a_total counter\na_total 1\n", "duplicate"},
		{"sample before type", "orphan 1\n", "TYPE declaration"},
		{"malformed sample", "# HELP g x\n# TYPE g gauge\ng{unclosed 1\n", "malformed sample"},
		{"unknown type", "# HELP s x\n# TYPE s summary\ns 1\n", "unknown type"},
		{"non-monotone buckets", "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "not monotone"},
		{"inf bucket vs count", "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "!= count"},
		{"missing required", "# HELP g x\n# TYPE g gauge\ng 1\n", "missing from the scrape"},
		{"split family", "# HELP a x\n# TYPE a gauge\na{w=\"1\"} 1\n" +
			"# HELP b x\n# TYPE b gauge\nb 1\na{w=\"2\"} 2\n", "not contiguous"},
	}
	for _, tc := range cases {
		var required []string
		if tc.name == "missing required" {
			required = []string{"slj_not_there"}
		}
		res := LintExposition([]byte(tc.raw), required)
		found := false
		for _, issue := range res.Issues {
			if strings.Contains(issue, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: issues %v do not mention %q", tc.name, res.Issues, tc.want)
		}
	}
}

func TestLintExpositionCleanScrape(t *testing.T) {
	res := LintExposition(nodeExposition(t, 7, []float64{0.5}), []string{"slj_jobs_submitted_total"})
	if len(res.Issues) != 0 {
		t.Fatalf("clean scrape reported issues: %v", res.Issues)
	}
	if res.Types["slj_jobs_submitted_total"] != "counter" || res.Types["slj_job_run_seconds"] != "histogram" {
		t.Errorf("types = %v", res.Types)
	}
	if got := res.FamilyOf("slj_job_run_seconds_bucket"); got != "slj_job_run_seconds" {
		t.Errorf("FamilyOf(bucket) = %q", got)
	}
}
