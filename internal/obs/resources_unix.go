//go:build unix

package obs

import (
	"syscall"
	"time"
)

// cpuTimes reads the process's user and system CPU time via getrusage.
func cpuTimes() (user, sys time.Duration) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, 0
	}
	return timevalDuration(ru.Utime), timevalDuration(ru.Stime)
}

func timevalDuration(tv syscall.Timeval) time.Duration {
	return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
}
