// Metrics federation: parse each fleet member's Prometheus text
// exposition and merge the families into one cluster-wide scrape, every
// sample re-labelled with its origin node. The merged output obeys the
// same grammar the per-node writer promises (HELP/TYPE once per family,
// before its samples), so the conformance lint applies to both views;
// bucket monotonicity survives the merge because the injected node label
// keeps every member's histogram series disjoint.
package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// ScrapedNode is one member's exposition as the federation merger
// consumes it. A node whose scrape failed carries Err and contributes
// only its slj_fleet_scrape_ok{node=...} 0 sample.
type ScrapedNode struct {
	// Node is the member's identity, typically its base URL; it becomes
	// the sample's node label value.
	Node string
	// Exposition is the raw /v1/metrics?format=prometheus body.
	Exposition []byte
	// Err records a failed scrape (Exposition is then ignored).
	Err error
}

// promFamily is one merged family: the TYPE/HELP header plus the samples
// of every node, in node order.
type promFamily struct {
	name, typ, help string
	samples         []promNodeSample
}

// promNodeSample is one member sample awaiting re-emission with the node
// label injected.
type promNodeSample struct {
	node   string
	name   string // full sample name, including _bucket/_sum/_count
	labels string // raw label body without braces, possibly empty
	value  string
}

var federateSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)

// MergeExpositions merges the members' scrapes into one exposition. The
// output is deterministic for a given input: nodes are visited sorted by
// name, families keep first-seen order across that visit. A member whose
// exposition fails to parse is reported like a failed scrape. Fleet-level
// bookkeeping families (member count, per-node scrape health) lead the
// output.
func MergeExpositions(nodes []ScrapedNode) ([]byte, error) {
	sorted := append([]ScrapedNode(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })

	var order []string
	families := map[string]*promFamily{}
	scrapeOK := map[string]bool{}
	for _, n := range sorted {
		if n.Err != nil {
			scrapeOK[n.Node] = false
			continue
		}
		if err := mergeOne(n, &order, families); err != nil {
			scrapeOK[n.Node] = false
			continue
		}
		scrapeOK[n.Node] = true
	}

	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Gauge("slj_fleet_members", "Fleet members included in this federated scrape.", float64(len(sorted)))
	for _, n := range sorted {
		ok := 0.0
		if scrapeOK[n.Node] {
			ok = 1
		}
		p.Gauge("slj_fleet_scrape_ok", "Whether the member's last metrics scrape succeeded.", ok, "node", n.Node)
	}
	for _, name := range order {
		fam := families[name]
		fmt.Fprintf(&buf, "# HELP %s %s\n# TYPE %s %s\n", fam.name, escapeHelp(fam.help), fam.name, fam.typ)
		for _, s := range fam.samples {
			buf.WriteString(s.name)
			buf.WriteString(`{node="`)
			buf.WriteString(escapeLabel(s.node))
			buf.WriteByte('"')
			if s.labels != "" {
				buf.WriteByte(',')
				buf.WriteString(s.labels)
			}
			buf.WriteString("} ")
			buf.WriteString(s.value)
			buf.WriteByte('\n')
		}
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// mergeOne folds one member's exposition into the family map. Samples are
// attached to the family of the most recent TYPE declaration, which is
// how the text format orders a scrape; a sample before any declaration is
// a parse error. A family whose declared type disagrees with an earlier
// member's is an error too — members run the same binary, so a mismatch
// means the scrape is not what it claims to be.
func mergeOne(n ScrapedNode, order *[]string, families map[string]*promFamily) error {
	var current *promFamily
	for i, line := range strings.Split(string(n.Exposition), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			name, help := parts[0], ""
			if len(parts) == 2 {
				help = parts[1]
			}
			fam, ok := families[name]
			if !ok {
				fam = &promFamily{name: name, help: help}
				families[name] = fam
				*order = append(*order, name)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				return fmt.Errorf("node %s line %d: malformed TYPE %q", n.Node, i+1, line)
			}
			name, typ := parts[0], parts[1]
			fam, ok := families[name]
			if !ok {
				fam = &promFamily{name: name}
				families[name] = fam
				*order = append(*order, name)
			}
			if fam.typ == "" {
				fam.typ = typ
			} else if fam.typ != typ {
				return fmt.Errorf("node %s: family %s declared %s, merged as %s", n.Node, name, typ, fam.typ)
			}
			current = fam
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := federateSampleRE.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("node %s line %d: malformed sample %q", n.Node, i+1, line)
		}
		if current == nil || !sampleBelongs(current, m[1]) {
			return fmt.Errorf("node %s line %d: sample %s outside its family block", n.Node, i+1, m[1])
		}
		current.samples = append(current.samples, promNodeSample{
			node: n.Node, name: m[1], labels: m[2], value: m[3],
		})
	}
	return nil
}

// sampleBelongs reports whether a sample name is part of the family: the
// family name itself, or the histogram suffixes on it.
func sampleBelongs(fam *promFamily, sampleName string) bool {
	if sampleName == fam.name {
		return true
	}
	if fam.typ != "histogram" {
		return false
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if sampleName == fam.name+suf {
			return true
		}
	}
	return false
}
