// Prometheus-style metrics: a process-wide registry of bucketed
// histograms fed from hot paths via atomics, and a text-exposition writer
// (format version 0.0.4) that also renders counter/gauge families derived
// from existing snapshot structs. Flat counters stay where they already
// live (jobs.Metrics, cache.Metrics, …); the registry only owns the
// latency distributions those snapshots cannot express.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the classic Prometheus duration buckets, in seconds.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// IOBuckets suit sub-millisecond storage operations (journal append,
// fsync), in seconds.
var IOBuckets = []float64{1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.5, 1}

// Histogram is a fixed-bucket histogram safe for concurrent observation.
// Bucket counts are stored non-cumulatively and cumulated at exposition.
type Histogram struct {
	name    string
	help    string
	labels  []string  // alternating key, value; fixed at registration
	buckets []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value (typically seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry holds named histograms. The zero value is not usable; use
// NewRegistry or the package Default.
type Registry struct {
	mu    sync.Mutex
	hists map[string]*Histogram
}

// Default is the process-wide registry every instrumented package feeds.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{hists: make(map[string]*Histogram)}
}

// Histogram returns the histogram for the name + fixed label pairs,
// creating it on first use. The help string and buckets of the first
// registration win. labels alternate key, value.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	key := name + "\x00" + strings.Join(labels, "\x00")
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	h := &Histogram{
		name:    name,
		help:    help,
		labels:  labels,
		buckets: buckets,
		counts:  make([]atomic.Uint64, len(buckets)+1),
	}
	r.hists[key] = h
	return h
}

// WritePrometheus renders every histogram of the registry in text
// exposition format, sorted by name then label set so every scrape is
// deterministic and a family's samples stay contiguous.
func (r *Registry) WritePrometheus(w *PromWriter) {
	r.mu.Lock()
	keys := make([]string, 0, len(r.hists))
	for k := range r.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hists := make([]*Histogram, len(keys))
	for i, k := range keys {
		hists[i] = r.hists[k]
	}
	r.mu.Unlock()
	for _, h := range hists {
		w.Histogram(h)
	}
}

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromWriter renders metric families in the Prometheus text format,
// emitting each family's HELP/TYPE header once.
type PromWriter struct {
	w    io.Writer
	seen map[string]bool
	err  error
}

// NewPromWriter wraps w. Write errors are sticky; check Err at the end.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) family(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Counter emits one sample of a counter family. labels alternate
// key, value; the family header is written on the first sample.
func (p *PromWriter) Counter(name, help string, value float64, labels ...string) {
	p.family(name, help, "counter")
	p.sample(name, value, labels)
}

// Gauge emits one sample of a gauge family.
func (p *PromWriter) Gauge(name, help string, value float64, labels ...string) {
	p.family(name, help, "gauge")
	p.sample(name, value, labels)
}

func (p *PromWriter) sample(name string, value float64, labels []string) {
	p.printf("%s%s %s\n", name, renderLabels(labels), formatFloat(value))
}

// Histogram emits a full histogram family: cumulative buckets, sum, count.
func (p *PromWriter) Histogram(h *Histogram) {
	p.family(h.name, h.help, "histogram")
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		p.printf("%s%s %d\n", h.name+"_bucket", renderLabels(append(append([]string{}, h.labels...), "le", formatFloat(ub))), cum)
	}
	cum += h.counts[len(h.buckets)].Load()
	p.printf("%s%s %d\n", h.name+"_bucket", renderLabels(append(append([]string{}, h.labels...), "le", "+Inf")), cum)
	p.printf("%s%s %s\n", h.name+"_sum", renderLabels(h.labels), formatFloat(h.Sum()))
	p.printf("%s%s %d\n", h.name+"_count", renderLabels(h.labels), h.Count())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
