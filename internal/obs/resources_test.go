package obs

// Tests for the resource-accounting snapshots: deltas never go negative,
// heap allocation between snapshots is visible, and Stamp attaches the
// usage attributes to a span.

import (
	"testing"
)

func TestResourceDeltaNonNegative(t *testing.T) {
	snap := TakeResourceSnapshot()
	u := snap.Delta()
	if u.CPUUserMS < 0 || u.CPUSystemMS < 0 {
		t.Errorf("negative CPU delta: %+v", u)
	}
}

func TestResourceDeltaSeesAllocations(t *testing.T) {
	snap := TakeResourceSnapshot()
	// Allocate well past any runtime noise; keep the slices reachable so
	// the work cannot be optimized away before the second snapshot.
	hold := make([][]byte, 64)
	for i := range hold {
		hold[i] = make([]byte, 64<<10)
	}
	u := snap.Delta()
	if u.HeapAllocBytes < 1<<20 {
		t.Errorf("heap delta %d bytes, want >= 1MiB after allocating 4MiB", u.HeapAllocBytes)
	}
	_ = hold
}

func TestResourceStampSetsSpanAttrs(t *testing.T) {
	trace, root := NewTrace("job")
	u := ResourceUsage{CPUUserMS: 12.5, CPUSystemMS: 0.25, HeapAllocBytes: 4096}
	u.Stamp(root)
	root.End()

	doc := trace.Doc("job-1")
	attrs := doc.Root.Attrs
	if attrs["cpu_user_ms"] != "12.500" {
		t.Errorf("cpu_user_ms = %q", attrs["cpu_user_ms"])
	}
	if attrs["cpu_system_ms"] != "0.250" {
		t.Errorf("cpu_system_ms = %q", attrs["cpu_system_ms"])
	}
	if attrs["heap_alloc_bytes"] != "4096" {
		t.Errorf("heap_alloc_bytes = %q", attrs["heap_alloc_bytes"])
	}

	// Stamping a nil span must be a no-op, not a panic.
	var nilSpan *Span
	u.Stamp(nilSpan)
}
