// Per-job resource accounting: CPU-time and heap-allocation deltas
// sampled around job execution and pipeline stages, stamped into trace
// spans and the job status document. The counters are process-wide
// (getrusage and the runtime's cumulative allocation total), so on a node
// running jobs concurrently a delta is an upper bound on the measured
// job's own cost — still enough to tell a CPU-bound outlier from one that
// merely waited, which is what the accounting is for.
package obs

import (
	"runtime/metrics"
	"strconv"
	"time"
)

// ResourceUsage is the measured cost of one job or stage.
type ResourceUsage struct {
	CPUUserMS      float64 `json:"cpu_user_ms"`
	CPUSystemMS    float64 `json:"cpu_system_ms"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
}

// ResourceSnapshot is one point-in-time reading of the process counters;
// two snapshots bracket a measured region.
type ResourceSnapshot struct {
	user  time.Duration
	sys   time.Duration
	alloc uint64
}

// TakeResourceSnapshot reads the process CPU times and the cumulative
// heap-allocation total. Cheap enough for per-stage use: one getrusage
// syscall and one runtime/metrics read, no stop-the-world.
func TakeResourceSnapshot() ResourceSnapshot {
	user, sys := cpuTimes()
	return ResourceSnapshot{user: user, sys: sys, alloc: heapAllocBytes()}
}

// Delta returns the usage accumulated since the snapshot. Counter
// regressions (a platform without getrusage reports zeros) clamp to zero.
func (s ResourceSnapshot) Delta() ResourceUsage {
	now := TakeResourceSnapshot()
	u := ResourceUsage{}
	if d := now.user - s.user; d > 0 {
		u.CPUUserMS = float64(d) / float64(time.Millisecond)
	}
	if d := now.sys - s.sys; d > 0 {
		u.CPUSystemMS = float64(d) / float64(time.Millisecond)
	}
	if now.alloc > s.alloc {
		u.HeapAllocBytes = now.alloc - s.alloc
	}
	return u
}

// Stamp attaches the usage to a span as attributes. Nil-safe via SetAttr.
func (u ResourceUsage) Stamp(span *Span) {
	span.SetAttr("cpu_user_ms", strconv.FormatFloat(u.CPUUserMS, 'f', 3, 64))
	span.SetAttr("cpu_system_ms", strconv.FormatFloat(u.CPUSystemMS, 'f', 3, 64))
	span.SetAttr("heap_alloc_bytes", strconv.FormatUint(u.HeapAllocBytes, 10))
}

// heapAllocBytes reads the runtime's cumulative heap allocation total —
// monotone over the process lifetime, unaffected by GC frees.
func heapAllocBytes() uint64 {
	sample := [1]metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample[:])
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}
