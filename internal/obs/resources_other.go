//go:build !unix

package obs

import "time"

// cpuTimes is a stub for platforms without getrusage: CPU deltas read as
// zero, allocation accounting still works.
func cpuTimes() (user, sys time.Duration) {
	return 0, 0
}
