// Package obs is the dependency-free observability layer threaded through
// every tier of the pipeline: per-job span traces (submit → queue wait →
// pipeline stages → journal append → terminal publish, crossing dispatch
// fan-out via a traceparent-style header), a Prometheus-text metrics
// registry of counters/gauges/bucketed histograms, runtime gauges, and
// log/slog construction helpers with job-id/trace-id correlation.
//
// Everything here is stdlib-only and safe on hot paths: span creation is
// context-gated (no span in the context → StartSpan is a nil no-op), and
// histogram observation is a handful of atomic adds.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"time"
)

// SpanContext identifies one span within one trace, in W3C trace-context
// dimensions: a 16-byte trace id and an 8-byte span id, both lowercase hex.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether both ids have the expected widths and are non-zero.
func (sc SpanContext) Valid() bool {
	return len(sc.TraceID) == 32 && len(sc.SpanID) == 16 &&
		isHex(sc.TraceID) && isHex(sc.SpanID) &&
		sc.TraceID != strings.Repeat("0", 32) && sc.SpanID != strings.Repeat("0", 16)
}

// Traceparent renders the propagation header value carried on dispatch
// fan-out requests: version 00, sampled flag always set.
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// TraceparentHeader is the HTTP header name used to propagate trace
// context across dispatch fan-out, after the W3C trace-context draft.
const TraceparentHeader = "Traceparent"

// ParseTraceparent parses a traceparent header value. The second return
// is false for anything malformed; unknown versions are rejected.
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: parts[1], SpanID: parts[2]}
	if !sc.Valid() || len(parts[3]) != 2 || !isHex(parts[3]) {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is unrecoverable; fall back to a fixed
		// non-zero id rather than panicking on a telemetry path.
		for i := range b {
			b[i] = byte(i + 1)
		}
	}
	return hex.EncodeToString(b)
}

// Trace is one job's span tree. All spans of a trace share one mutex, so
// concurrent stage goroutines may start/end children freely.
type Trace struct {
	mu      sync.Mutex
	traceID string
	root    *Span
}

// Span is one timed operation within a Trace. A nil *Span is a valid
// no-op receiver for every method, which is what StartSpan returns when
// the context carries no trace — instrumented code never branches.
type Span struct {
	trace    *Trace
	id       string
	parentID string
	name     string
	start    time.Time
	end      time.Time
	attrs    map[string]string
	children []*Span
}

// NewTrace starts a fresh trace whose root span begins now.
func NewTrace(rootName string) (*Trace, *Span) {
	return newTrace(randHex(16), "", rootName)
}

// NewTraceFrom starts a trace continuing a remote parent: the new root
// adopts the parent's trace id and records its span id, so grafting the
// resulting span tree under the remote caller's tree yields one coherent
// trace. An invalid parent degrades to NewTrace.
func NewTraceFrom(parent SpanContext, rootName string) (*Trace, *Span) {
	if !parent.Valid() {
		return NewTrace(rootName)
	}
	return newTrace(parent.TraceID, parent.SpanID, rootName)
}

func newTrace(traceID, parentSpanID, rootName string) (*Trace, *Span) {
	t := &Trace{traceID: traceID}
	t.root = &Span{
		trace:    t,
		id:       randHex(8),
		parentID: parentSpanID,
		name:     rootName,
		start:    time.Now(),
	}
	return t, t.root
}

// TraceID returns the trace's 32-hex-char id.
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Start opens a child span beginning now. Nil-safe.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		trace:    s.trace,
		id:       randHex(8),
		parentID: s.id,
		name:     name,
		start:    time.Now(),
	}
	s.trace.mu.Lock()
	s.children = append(s.children, c)
	s.trace.mu.Unlock()
	return c
}

// End closes the span. Ending twice keeps the first end time. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.trace.mu.Unlock()
}

// SetAttr attaches a key/value annotation. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.trace.mu.Unlock()
}

// Context returns the span's propagation identity. Zero for nil spans.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.trace.traceID, SpanID: s.id}
}

// TraceDoc is the JSON form of a trace served at /v1/jobs/{id}/trace.
// Replayed marks a stub reconstructed for a journal-replayed job whose
// live span tree did not survive the restart: the root span carries the
// original timestamps, nothing else.
type TraceDoc struct {
	TraceID  string   `json:"trace_id"`
	JobID    string   `json:"job_id,omitempty"`
	Replayed bool     `json:"replayed,omitempty"`
	Root     *SpanDoc `json:"root"`
}

// SpanDoc is one span of a TraceDoc. Fields are fully exported so a
// dispatcher can graft a worker node's tree under its own submit span.
type SpanDoc struct {
	Name        string            `json:"name"`
	SpanID      string            `json:"span_id"`
	ParentID    string            `json:"parent_id,omitempty"`
	StartUnixNS int64             `json:"start_unix_ns"`
	DurationMS  float64           `json:"duration_ms"`
	InFlight    bool              `json:"in_flight,omitempty"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Children    []*SpanDoc        `json:"children,omitempty"`
}

// Doc snapshots the trace as a serializable span tree. Spans still open
// are reported with their duration so far and InFlight set.
func (t *Trace) Doc(jobID string) *TraceDoc {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	return &TraceDoc{TraceID: t.traceID, JobID: jobID, Root: t.root.docLocked(now)}
}

func (s *Span) docLocked(now time.Time) *SpanDoc {
	d := &SpanDoc{
		Name:        s.name,
		SpanID:      s.id,
		ParentID:    s.parentID,
		StartUnixNS: s.start.UnixNano(),
	}
	end := s.end
	if end.IsZero() {
		end = now
		d.InFlight = true
	}
	d.DurationMS = float64(end.Sub(s.start)) / float64(time.Millisecond)
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			d.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		d.Children = append(d.Children, c.docLocked(now))
	}
	return d
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span, making downstream
// StartSpan calls attach children to it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the context's span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's span and returns a derived
// context carrying it. When the context has no span — the un-traced
// synchronous and benchmark paths — it returns the context unchanged and
// a nil span whose End/SetAttr are no-ops, costing one context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.Start(name)
	return ContextWithSpan(ctx, c), c
}
