// SLO tracking: a rolling multi-window service-level-indicator store fed
// from job terminal transitions. A job is "good" when it succeeded within
// the latency objective; the burn rate over a window is the observed
// bad-job ratio divided by the error budget (1 - target), the standard
// multi-window burn-rate alerting quantity — burn 1.0 spends the budget
// exactly at the SLO boundary, burn ≥ 14 on the short window is the
// classic fast-burn page.
//
// The store is lock-free: a ring of per-minute slots whose counters are
// plain atomics. A slot is reclaimed by CAS-ing its epoch forward and
// zeroing its counters; concurrent observers racing the reset can at
// worst misplace a handful of observations by one minute, which the
// window sums tolerate.
package obs

import (
	"sync/atomic"
	"time"
)

const (
	// sloSlots sizes the minute ring: enough for the 1h window plus the
	// in-progress minute.
	sloSlots = 64
	// SLOWindowShort and SLOWindowLong are the two burn-rate windows the
	// exposition reports.
	SLOWindowShort = 5 * time.Minute
	SLOWindowLong  = time.Hour
	// SLOFastBurnAlert is the short-window burn rate past which the SLO
	// health component flips to degraded (the conventional 14.4 ≈
	// "spending 30 days of budget in 2 days" page threshold, rounded).
	SLOFastBurnAlert = 14.0
)

type sloSlot struct {
	epoch atomic.Int64 // unix minute this slot currently accumulates
	total atomic.Uint64
	bad   atomic.Uint64
}

// SLO is one process's SLI store. All methods are nil-safe so callers can
// thread an optional tracker without branching.
type SLO struct {
	objective time.Duration
	target    float64
	now       func() time.Time
	slots     [sloSlots]sloSlot
}

// NewSLO returns a tracker for the given latency objective and success
// target (e.g. 0.99 for "99% of jobs succeed within the objective").
// target is clamped to [0.5, 0.9999]; a zero objective disables the
// latency criterion (only failures burn budget).
func NewSLO(latencyObjective time.Duration, target float64) *SLO {
	if target < 0.5 {
		target = 0.5
	}
	if target > 0.9999 {
		target = 0.9999
	}
	return &SLO{objective: latencyObjective, target: target, now: time.Now}
}

// SetClock overrides the tracker's clock, for tests.
func (s *SLO) SetClock(now func() time.Time) {
	if s != nil {
		s.now = now
	}
}

// Objective returns the latency objective.
func (s *SLO) Objective() time.Duration {
	if s == nil {
		return 0
	}
	return s.objective
}

// Target returns the success-ratio target.
func (s *SLO) Target() float64 {
	if s == nil {
		return 0
	}
	return s.target
}

// Observe records one finished job: its end-to-end latency and whether it
// succeeded. Failed jobs and jobs slower than the objective burn budget.
func (s *SLO) Observe(latency time.Duration, success bool) {
	if s == nil {
		return
	}
	slot := s.slot(s.now().Unix() / 60)
	slot.total.Add(1)
	if !success || (s.objective > 0 && latency > s.objective) {
		slot.bad.Add(1)
	}
}

// slot returns the ring slot for the given unix minute, reclaiming it
// from an older minute if needed.
func (s *SLO) slot(minute int64) *sloSlot {
	slot := &s.slots[minute%sloSlots]
	for {
		e := slot.epoch.Load()
		if e == minute {
			return slot
		}
		if slot.epoch.CompareAndSwap(e, minute) {
			// The CAS winner resets the counters for the new minute.
			slot.total.Store(0)
			slot.bad.Store(0)
			return slot
		}
	}
}

// Window sums the observations of the trailing window.
func (s *SLO) Window(window time.Duration) (total, bad uint64) {
	if s == nil {
		return 0, 0
	}
	minutes := int64(window / time.Minute)
	if minutes < 1 {
		minutes = 1
	}
	if minutes > sloSlots-1 {
		minutes = sloSlots - 1
	}
	nowMin := s.now().Unix() / 60
	for i := range s.slots {
		slot := &s.slots[i]
		if e := slot.epoch.Load(); e > nowMin-minutes && e <= nowMin {
			total += slot.total.Load()
			bad += slot.bad.Load()
		}
	}
	return total, bad
}

// Burn returns the error-budget burn rate over the trailing window: the
// bad-job ratio divided by the budget (1 - target). Zero when the window
// holds no observations.
func (s *SLO) Burn(window time.Duration) float64 {
	if s == nil {
		return 0
	}
	total, bad := s.Window(window)
	if total == 0 {
		return 0
	}
	budget := 1 - s.target
	return (float64(bad) / float64(total)) / budget
}

// SLODoc is the JSON rollup of the tracker, served in /v1/fleet and the
// deep-health components.
type SLODoc struct {
	ObjectiveMS float64 `json:"objective_ms"`
	Target      float64 `json:"target"`
	Jobs5m      uint64  `json:"jobs_5m"`
	Bad5m       uint64  `json:"bad_5m"`
	Burn5m      float64 `json:"burn_5m"`
	Jobs1h      uint64  `json:"jobs_1h"`
	Bad1h       uint64  `json:"bad_1h"`
	Burn1h      float64 `json:"burn_1h"`
}

// Doc snapshots the tracker. Nil for a nil tracker.
func (s *SLO) Doc() *SLODoc {
	if s == nil {
		return nil
	}
	t5, b5 := s.Window(SLOWindowShort)
	t1, b1 := s.Window(SLOWindowLong)
	return &SLODoc{
		ObjectiveMS: float64(s.objective) / float64(time.Millisecond),
		Target:      s.target,
		Jobs5m:      t5, Bad5m: b5, Burn5m: s.Burn(SLOWindowShort),
		Jobs1h: t1, Bad1h: b1, Burn1h: s.Burn(SLOWindowLong),
	}
}

// WritePrometheus emits the tracker's gauge families.
func (s *SLO) WritePrometheus(p *PromWriter) {
	if s == nil {
		return
	}
	p.Gauge("slj_slo_objective_latency_seconds", "End-to-end job latency objective.", s.objective.Seconds())
	p.Gauge("slj_slo_target_ratio", "Success-ratio target of the SLO.", s.target)
	// Emit family by family, not window by window: the text format
	// requires every family's samples in one contiguous group, which the
	// federation merger enforces strictly.
	windows := []struct {
		label  string
		window time.Duration
	}{{"5m", SLOWindowShort}, {"1h", SLOWindowLong}}
	for _, w := range windows {
		total, _ := s.Window(w.window)
		p.Gauge("slj_slo_window_jobs", "Jobs observed in the trailing window.", float64(total), "window", w.label)
	}
	for _, w := range windows {
		_, bad := s.Window(w.window)
		p.Gauge("slj_slo_window_bad_jobs", "Jobs that failed or missed the latency objective in the trailing window.", float64(bad), "window", w.label)
	}
	for _, w := range windows {
		p.Gauge("slj_slo_error_budget_burn", "Error-budget burn rate over the trailing window (1.0 = spending exactly at the objective).", s.Burn(w.window), "window", w.label)
	}
}
