// Runtime health gauges for the Prometheus export, sourced from
// runtime/metrics (plus the GC pause total, which only ReadMemStats
// exposes as a plain cumulative number).
package obs

import (
	"runtime"
	"runtime/metrics"
)

var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
}

// WriteRuntime emits the process runtime gauge set: live goroutines, heap
// object bytes, completed GC cycles, and total GC stop-the-world pause
// time. Cardinality is fixed — four families, no labels.
func (p *PromWriter) WriteRuntime() {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	read := func(i int) float64 {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			return float64(samples[i].Value.Uint64())
		case metrics.KindFloat64:
			return samples[i].Value.Float64()
		default:
			return 0
		}
	}
	p.Gauge("slj_runtime_goroutines", "Number of live goroutines.", read(0))
	p.Gauge("slj_runtime_heap_objects_bytes", "Bytes of heap memory occupied by live and dead objects.", read(1))
	p.Counter("slj_runtime_gc_cycles_total", "Completed garbage-collection cycles.", read(2))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Counter("slj_runtime_gc_pause_seconds_total", "Cumulative garbage-collection stop-the-world pause time.", float64(ms.PauseTotalNs)/1e9)
}
