// Conformance lint for the Prometheus text exposition format (version
// 0.0.4), shared by the server's scrape test, the fleet-federation e2e
// tests, and the slj-promlint CI command. It enforces the grammar the
// repo's own writer promises: well-formed metric and label names,
// HELP/TYPE exactly once per family and before its samples, counters
// named *_total, histogram buckets cumulative and monotone with the +Inf
// bucket equal to the series' _count.
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	lintMetricRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	lintLabelRE  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
	lintSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)
)

// LintSample is one parsed exposition sample line.
type LintSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// labelKey canonicalizes the label set minus `le`, for bucket grouping.
func (s LintSample) labelKey() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// LintResult is the parsed view of a linted scrape: the declared family
// types and every sample, for callers that assert beyond the grammar.
type LintResult struct {
	// Types maps each declared family to counter|gauge|histogram.
	Types map[string]string
	// Samples holds every sample line in scrape order.
	Samples []LintSample
	// Issues lists every conformance violation found, in scrape order.
	Issues []string
}

// FamilyOf resolves a sample name to its declared family: histogram
// samples carry the _bucket/_sum/_count suffixes, everything else is its
// own family.
func (r *LintResult) FamilyOf(sampleName string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sampleName, suf)
		if base != sampleName && r.Types[base] == "histogram" {
			return base
		}
	}
	return sampleName
}

// LintExposition lints raw against the text exposition grammar and checks
// that every family in required is present. The returned result carries
// both the issues and the parsed samples; a clean scrape has
// len(result.Issues) == 0.
func LintExposition(raw []byte, required []string) *LintResult {
	res := &LintResult{Types: map[string]string{}}
	bad := func(format string, args ...any) {
		res.Issues = append(res.Issues, fmt.Sprintf(format, args...))
	}
	helps := map[string]bool{}
	// Contiguity: every family's samples must form one group. lastFamily
	// tracks the open sample block; a family reappearing after its block
	// closed is a violation (and breaks federation merging).
	lastFamily := ""
	closedFamilies := map[string]bool{}
	for i, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if !lintMetricRE.MatchString(parts[0]) {
				bad("line %d: malformed HELP name %q", i+1, parts[0])
			}
			if helps[parts[0]] {
				bad("line %d: duplicate HELP for %s", i+1, parts[0])
			}
			helps[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !lintMetricRE.MatchString(parts[0]) {
				bad("line %d: malformed TYPE line %q", i+1, line)
				continue
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				bad("line %d: unknown type %q", i+1, typ)
			}
			if _, dup := res.Types[name]; dup {
				bad("line %d: duplicate TYPE for %s", i+1, name)
			}
			if !helps[name] {
				bad("line %d: TYPE %s has no preceding HELP", i+1, name)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				bad("line %d: counter %s not named *_total", i+1, name)
			}
			res.Types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			bad("line %d: unexpected comment %q", i+1, line)
			continue
		}
		m := lintSampleRE.FindStringSubmatch(line)
		if m == nil {
			bad("line %d: malformed sample %q", i+1, line)
			continue
		}
		s := LintSample{Name: m[1], Labels: map[string]string{}}
		for _, kv := range lintLabelRE.FindAllStringSubmatch(m[2], -1) {
			s.Labels[kv[1]] = kv[2]
		}
		val, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			bad("line %d: unparseable value %q", i+1, m[3])
			continue
		}
		s.Value = val
		family := res.FamilyOf(s.Name)
		if _, ok := res.Types[family]; !ok {
			bad("line %d: sample %s precedes (or lacks) its TYPE declaration", i+1, s.Name)
		}
		if family != lastFamily {
			if lastFamily != "" {
				closedFamilies[lastFamily] = true
			}
			if closedFamilies[family] {
				bad("line %d: family %s samples not contiguous (block reopened)", i+1, family)
			}
			lastFamily = family
		}
		res.Samples = append(res.Samples, s)
	}

	// Histogram shape: buckets monotone non-decreasing in le order, the
	// +Inf bucket present and equal to the series' _count.
	buckets := map[string][]LintSample{} // family|labelKey -> bucket samples
	counts := map[string]float64{}
	for _, s := range res.Samples {
		if base := strings.TrimSuffix(s.Name, "_bucket"); base != s.Name && res.Types[base] == "histogram" {
			key := base + "|" + s.labelKey()
			buckets[key] = append(buckets[key], s)
		}
		if base := strings.TrimSuffix(s.Name, "_count"); base != s.Name && res.Types[base] == "histogram" {
			counts[base+"|"+s.labelKey()] = s.Value
		}
	}
	for key, bs := range buckets {
		sortable := true
		for _, b := range bs {
			if _, err := leBound(b); err != nil {
				bad("series %s: %v", key, err)
				sortable = false
			}
		}
		if !sortable {
			continue
		}
		sort.Slice(bs, func(i, j int) bool {
			bi, _ := leBound(bs[i])
			bj, _ := leBound(bs[j])
			return bi < bj
		})
		var prev float64
		for _, b := range bs {
			if b.Value < prev {
				bad("series %s: bucket counts not monotone (%v after %v)", key, b.Value, prev)
			}
			prev = b.Value
		}
		last := bs[len(bs)-1]
		if le := last.Labels["le"]; le != "+Inf" {
			bad("series %s: final bucket le=%q, want +Inf", key, le)
		}
		cnt, ok := counts[key]
		if !ok {
			bad("series %s: no _count sample", key)
		} else if last.Value != cnt {
			bad("series %s: +Inf bucket %v != count %v", key, last.Value, cnt)
		}
	}

	for _, want := range required {
		if _, ok := res.Types[want]; !ok {
			bad("family %s missing from the scrape", want)
		}
	}
	return res
}

// leBound parses a bucket sample's le label as its sort key.
func leBound(s LintSample) (float64, error) {
	le := s.Labels["le"]
	if le == "+Inf" {
		return 1e308, nil
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable le %q on bucket of %s", le, s.Name)
	}
	return v, nil
}
