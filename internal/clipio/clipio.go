// Package clipio reads and writes jump clips on disk: frame_NN.ppm image
// sequences plus the truth.txt pose file that carries ground-truth or
// manually annotated stick models. It is the storage format shared by the
// slj-synth, slj-analyze and slj-serve tools.
package clipio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

// ErrNoFrames is returned when a directory holds no frame files.
var ErrNoFrames = errors.New("clipio: no frame_NN.ppm files")

// FramePattern matches the file names written for clip frames.
const (
	framePrefix = "frame_"
	frameSuffix = ".ppm"
)

// FrameName returns the canonical file name of frame k.
func FrameName(k int) string { return fmt.Sprintf("%s%02d%s", framePrefix, k, frameSuffix) }

// WriteFrames writes the frames of a clip into dir as frame_NN.ppm.
func WriteFrames(dir string, frames []*imaging.Image) error {
	for k, f := range frames {
		if err := imaging.WritePPMFile(filepath.Join(dir, FrameName(k)), f); err != nil {
			return fmt.Errorf("frame %d: %w", k, err)
		}
	}
	return nil
}

// ReadFrames loads every frame_NN.ppm in dir in index order.
func ReadFrames(dir string) ([]*imaging.Image, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), framePrefix) && strings.HasSuffix(e.Name(), frameSuffix) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoFrames, dir)
	}
	sort.Strings(names)
	frames := make([]*imaging.Image, 0, len(names))
	for _, n := range names {
		img, err := imaging.ReadPPMFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		frames = append(frames, img)
	}
	return frames, nil
}

// WritePoses writes a pose sequence in the truth.txt format: one line per
// frame with the frame index, the trunk centre, and the eight absolute
// angles.
func WritePoses(w io.Writer, poses []stickmodel.Pose) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# frame x0 y0 rho0 rho1 rho2 rho3 rho4 rho5 rho6 rho7"); err != nil {
		return err
	}
	for k, p := range poses {
		if _, err := fmt.Fprintf(bw, "%d %.2f %.2f", k, p.X, p.Y); err != nil {
			return err
		}
		for l := 0; l < stickmodel.NumSticks; l++ {
			if _, err := fmt.Fprintf(bw, " %.2f", p.Rho[l]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePosesFile writes poses to a truth.txt file at path.
func WritePosesFile(path string, poses []stickmodel.Pose) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return WritePoses(f, poses)
}

// ReadPoses parses a truth.txt stream. Lines are "k x0 y0 ρ0..ρ7";
// comments (#) and blank lines are ignored. Frames may appear in any order;
// the result is indexed by frame number.
func ReadPoses(r io.Reader) ([]stickmodel.Pose, error) {
	sc := bufio.NewScanner(r)
	byFrame := map[int]stickmodel.Pose{}
	maxFrame := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 11 {
			return nil, fmt.Errorf("clipio: pose line needs 11 fields, got %d: %q", len(fields), line)
		}
		k, err := strconv.Atoi(fields[0])
		if err != nil || k < 0 {
			return nil, fmt.Errorf("clipio: bad frame index %q", fields[0])
		}
		var vals [10]float64
		for i := 0; i < 10; i++ {
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("clipio: frame %d field %d: %w", k, i+1, err)
			}
			vals[i] = v
		}
		var p stickmodel.Pose
		p.X, p.Y = vals[0], vals[1]
		for l := 0; l < stickmodel.NumSticks; l++ {
			p.Rho[l] = vals[2+l]
		}
		byFrame[k] = p
		if k > maxFrame {
			maxFrame = k
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxFrame < 0 {
		return nil, errors.New("clipio: no pose lines")
	}
	poses := make([]stickmodel.Pose, maxFrame+1)
	for k := range poses {
		p, ok := byFrame[k]
		if !ok {
			return nil, fmt.Errorf("clipio: missing pose for frame %d", k)
		}
		poses[k] = p
	}
	return poses, nil
}

// ReadPosesFile reads a truth.txt file.
func ReadPosesFile(path string) ([]stickmodel.Pose, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	poses, err := ReadPoses(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return poses, nil
}

// ReadManualPose reads the first pose of a truth.txt file — the manual
// first-frame annotation the analyzer needs.
func ReadManualPose(path string) (stickmodel.Pose, error) {
	poses, err := ReadPosesFile(path)
	if err != nil {
		return stickmodel.Pose{}, err
	}
	return poses[0], nil
}
