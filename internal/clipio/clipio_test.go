package clipio

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
)

func samplePoses(n int) []stickmodel.Pose {
	poses := make([]stickmodel.Pose, n)
	for k := range poses {
		poses[k].X = float64(10 + k)
		poses[k].Y = float64(20 + k)
		for l := 0; l < stickmodel.NumSticks; l++ {
			poses[k].Rho[l] = float64((k*37 + l*11) % 360)
		}
	}
	return poses
}

func TestPosesRoundTrip(t *testing.T) {
	poses := samplePoses(5)
	var buf bytes.Buffer
	if err := WritePoses(&buf, poses); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoses(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(poses) {
		t.Fatalf("got %d poses, want %d", len(got), len(poses))
	}
	for k := range poses {
		if math.Abs(got[k].X-poses[k].X) > 0.01 || math.Abs(got[k].Y-poses[k].Y) > 0.01 {
			t.Errorf("frame %d centre mismatch", k)
		}
		for l := 0; l < stickmodel.NumSticks; l++ {
			if math.Abs(got[k].Rho[l]-poses[k].Rho[l]) > 0.01 {
				t.Errorf("frame %d stick %d angle mismatch", k, l)
			}
		}
	}
}

func TestPosesFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "truth.txt")
	poses := samplePoses(3)
	if err := WritePosesFile(path, poses); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPosesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d poses", len(got))
	}
	manual, err := ReadManualPose(path)
	if err != nil {
		t.Fatal(err)
	}
	if manual.X != poses[0].X {
		t.Error("manual pose is not frame 0")
	}
}

func TestReadPosesOutOfOrderAndComments(t *testing.T) {
	input := `# comment
1 11 21 0 1 2 3 4 5 6 7

0 10 20 0 1 2 3 4 5 6 7
`
	got, err := ReadPoses(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].X != 10 || got[1].X != 11 {
		t.Errorf("out-of-order parse wrong: %+v", got)
	}
}

func TestReadPosesErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"short line", "0 1 2 3\n"},
		{"bad index", "x 10 20 0 1 2 3 4 5 6 7\n"},
		{"negative index", "-1 10 20 0 1 2 3 4 5 6 7\n"},
		{"bad float", "0 10 twenty 0 1 2 3 4 5 6 7\n"},
		{"gap in frames", "0 10 20 0 1 2 3 4 5 6 7\n2 10 20 0 1 2 3 4 5 6 7\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadPoses(strings.NewReader(tc.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestFramesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	frames := []*imaging.Image{
		imaging.NewImageFilled(8, 6, imaging.Red),
		imaging.NewImageFilled(8, 6, imaging.Blue),
	}
	if err := WriteFrames(dir, frames); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d frames", len(got))
	}
	if got[0].At(0, 0) != imaging.Red || got[1].At(0, 0) != imaging.Blue {
		t.Error("frame order or content wrong")
	}
}

func TestReadFramesEmptyDir(t *testing.T) {
	if _, err := ReadFrames(t.TempDir()); err == nil {
		t.Error("expected ErrNoFrames")
	}
}

func TestFrameName(t *testing.T) {
	if FrameName(3) != "frame_03.ppm" || FrameName(12) != "frame_12.ppm" {
		t.Errorf("FrameName = %s/%s", FrameName(3), FrameName(12))
	}
}
