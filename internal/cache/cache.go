// Package cache is the content-addressed analysis-result store behind the
// web service's cache-on-submit path: identical clips resubmitted under an
// identical configuration are answered from the store instead of re-running
// the pipeline (seconds of GA work per clip).
//
// A cache key is the SHA-256 of everything the analysis result depends on —
// the raw frame bytes, the manual first-frame pose, the analyzer
// configuration fingerprint, the stage selection and the response-shaping
// options; the Keyer helper accumulates those components incrementally so
// callers never hold a concatenated buffer. The store itself is a bounded
// LRU with TTL expiry: entries expire TTL after insertion (lazily on access
// and by a background janitor, the same pattern as the jobs manager), and
// when the entry bound is hit the least recently used entry is evicted.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sync"
	"time"
)

// Key is a content address: the SHA-256 of a request's identity.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey reverses Key.String. ok is false for anything that is not
// exactly one hex-encoded SHA-256 (including the empty string), so callers
// can treat an absent or corrupt key as "no key" without error plumbing.
func ParseKey(s string) (Key, bool) {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != sha256.Size {
		return Key{}, false
	}
	var k Key
	copy(k[:], raw)
	return k, true
}

// Keyer incrementally hashes the components of a request identity into a
// Key. The Write methods are length-prefixed where ambiguity is possible so
// distinct component sequences can never collide by concatenation.
type Keyer struct {
	h hash.Hash
}

// NewKeyer returns an empty Keyer.
func NewKeyer() *Keyer { return &Keyer{h: sha256.New()} }

// WriteString hashes a length-prefixed string component.
func (k *Keyer) WriteString(s string) {
	k.writeLen(len(s))
	k.h.Write([]byte(s))
}

// WriteBytes hashes a length-prefixed byte component.
func (k *Keyer) WriteBytes(b []byte) {
	k.writeLen(len(b))
	k.h.Write(b)
}

// WriteInt hashes an integer component.
func (k *Keyer) WriteInt(v int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	k.h.Write(buf[:])
}

// WriteFloat hashes a float64 component by its IEEE-754 bits, so the key is
// exact — no formatting round-trip.
func (k *Keyer) WriteFloat(v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	k.h.Write(buf[:])
}

// WriteBool hashes a boolean component.
func (k *Keyer) WriteBool(v bool) {
	if v {
		k.h.Write([]byte{1})
	} else {
		k.h.Write([]byte{0})
	}
}

// Sum returns the accumulated key.
func (k *Keyer) Sum() Key {
	var key Key
	copy(key[:], k.h.Sum(nil))
	return key
}

func (k *Keyer) writeLen(n int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	k.h.Write(buf[:])
}

// Config parameterises a Store.
type Config struct {
	// MaxEntries bounds the store; inserting beyond it evicts the least
	// recently used entry. Must be >= 1.
	MaxEntries int
	// TTL expires entries this long after insertion; 0 disables expiry.
	TTL time.Duration
	// Clock overrides time.Now, a test seam for TTL expiry.
	Clock func() time.Time
	// OnStore, when set, observes every Put after the entry is stored —
	// the write-through seam successor replication hangs off. Called
	// outside the store's lock; implementations must not call back into
	// the store synchronously with blocking work.
	OnStore func(k Key, v any)
}

// DefaultConfig returns a small service-oriented configuration.
func DefaultConfig() Config {
	return Config{MaxEntries: 64, TTL: 15 * time.Minute}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.MaxEntries < 1 {
		return fmt.Errorf("cache: MaxEntries must be >= 1, got %d", c.MaxEntries)
	}
	if c.TTL < 0 {
		return fmt.Errorf("cache: TTL must be >= 0, got %v", c.TTL)
	}
	return nil
}

// Metrics is a point-in-time snapshot of the store.
type Metrics struct {
	Entries    int    `json:"entries"`
	Capacity   int    `json:"capacity"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Stored     uint64 `json:"stored"`
	EvictedTTL uint64 `json:"evicted_ttl"`
	EvictedLRU uint64 `json:"evicted_lru"`
}

// entry is one cached value; expires is zero when TTL is disabled.
type entry struct {
	key     Key
	val     any
	expires time.Time
	elem    *list.Element
}

// Store is the bounded content-addressed cache.
type Store struct {
	cfg   Config
	clock func() time.Time

	mu      sync.Mutex
	entries map[Key]*entry
	lru     *list.List // front = most recently used; values are *entry
	closed  bool

	hits       uint64
	misses     uint64
	stored     uint64
	evictedTTL uint64
	evictedLRU uint64

	janitorStop chan struct{}
	janitor     sync.WaitGroup
}

// New starts a store plus, when a TTL is set, a janitor goroutine expiring
// entries so memory stays bounded even when nobody reads.
func New(cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Store{
		cfg:         cfg,
		clock:       clock,
		entries:     make(map[Key]*entry),
		lru:         list.New(),
		janitorStop: make(chan struct{}),
	}
	if cfg.TTL > 0 {
		s.janitor.Add(1)
		go s.runJanitor()
	}
	return s, nil
}

// Config returns the store configuration.
func (s *Store) Config() Config { return s.cfg }

// Get returns the value stored under k and refreshes its recency. Expired
// or absent keys count as misses. Only the accessed entry's expiry is
// checked here — bulk expiry is the janitor's job — so the hot path stays
// O(1) under the lock.
func (s *Store) Get(k Key) (any, bool) {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if ok && s.cfg.TTL > 0 && !e.expires.After(now) {
		s.removeLocked(e)
		s.evictedTTL++
		ok = false
	}
	if !ok {
		s.misses++
		return nil, false
	}
	s.lru.MoveToFront(e.elem)
	s.hits++
	return e.val, true
}

// Put stores v under k, replacing any previous value and restarting its
// TTL. When the store is full the least recently used entry is evicted.
func (s *Store) Put(k Key, v any) {
	now := s.clock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	var expires time.Time
	if s.cfg.TTL > 0 {
		expires = now.Add(s.cfg.TTL)
	}
	if e, ok := s.entries[k]; ok {
		e.val = v
		e.expires = expires
		s.lru.MoveToFront(e.elem)
		s.stored++
	} else {
		for len(s.entries) >= s.cfg.MaxEntries {
			oldest := s.lru.Back()
			if oldest == nil {
				break
			}
			s.removeLocked(oldest.Value.(*entry))
			s.evictedLRU++
		}
		e := &entry{key: k, val: v, expires: expires}
		e.elem = s.lru.PushFront(e)
		s.entries[k] = e
		s.stored++
	}
	s.mu.Unlock()
	if s.cfg.OnStore != nil {
		s.cfg.OnStore(k, v)
	}
}

// Metrics returns a consistent snapshot of occupancy and hit/miss counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(s.clock())
	return Metrics{
		Entries:    len(s.entries),
		Capacity:   s.cfg.MaxEntries,
		Hits:       s.hits,
		Misses:     s.misses,
		Stored:     s.stored,
		EvictedTTL: s.evictedTTL,
		EvictedLRU: s.evictedLRU,
	}
}

// Close stops the janitor and drops all entries. It is idempotent; a closed
// store serves misses and ignores Put.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.entries = make(map[Key]*entry)
	s.lru.Init()
	s.mu.Unlock()
	close(s.janitorStop)
	s.janitor.Wait()
}

// runJanitor periodically expires entries, mirroring the jobs janitor.
func (s *Store) runJanitor() {
	defer s.janitor.Done()
	interval := s.cfg.TTL / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.mu.Lock()
			s.sweepLocked(s.clock())
			s.mu.Unlock()
		}
	}
}

// sweepLocked drops expired entries. Caller holds mu.
func (s *Store) sweepLocked(now time.Time) {
	if s.cfg.TTL <= 0 {
		return
	}
	for _, e := range s.entries {
		if !e.expires.After(now) {
			s.removeLocked(e)
			s.evictedTTL++
		}
	}
}

// removeLocked unlinks one entry. Caller holds mu.
func (s *Store) removeLocked(e *entry) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.key)
}
