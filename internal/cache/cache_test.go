package cache

import (
	"sync"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{MaxEntries: 0}).Validate(); err == nil {
		t.Error("MaxEntries 0 must be invalid")
	}
	if err := (Config{MaxEntries: 1, TTL: -time.Second}).Validate(); err == nil {
		t.Error("negative TTL must be invalid")
	}
}

func TestKeyerComponentsAreUnambiguous(t *testing.T) {
	sum := func(build func(*Keyer)) Key {
		k := NewKeyer()
		build(k)
		return k.Sum()
	}
	a := sum(func(k *Keyer) { k.WriteString("ab"); k.WriteString("c") })
	b := sum(func(k *Keyer) { k.WriteString("a"); k.WriteString("bc") })
	if a == b {
		t.Error("length prefixing must separate string boundaries")
	}
	if sum(func(k *Keyer) { k.WriteFloat(1) }) == sum(func(k *Keyer) { k.WriteFloat(2) }) {
		t.Error("distinct floats must hash differently")
	}
	if sum(func(k *Keyer) { k.WriteBool(true) }) == sum(func(k *Keyer) { k.WriteBool(false) }) {
		t.Error("distinct bools must hash differently")
	}
	// Determinism: the same component sequence yields the same key.
	c1 := sum(func(k *Keyer) { k.WriteString("x"); k.WriteInt(7); k.WriteFloat(3.5) })
	c2 := sum(func(k *Keyer) { k.WriteString("x"); k.WriteInt(7); k.WriteFloat(3.5) })
	if c1 != c2 {
		t.Error("identical component sequences must collide")
	}
	if c1.String() == "" || len(c1.String()) != 64 {
		t.Errorf("hex key = %q", c1.String())
	}
}

// key returns a distinct Key for test indexing.
func key(i int) Key {
	k := NewKeyer()
	k.WriteInt(i)
	return k.Sum()
}

func TestHitMissCounters(t *testing.T) {
	s, err := New(Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok := s.Get(key(1)); ok {
		t.Fatal("empty store must miss")
	}
	s.Put(key(1), "v1")
	v, ok := s.Get(key(1))
	if !ok || v != "v1" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("unknown key must miss")
	}
	m := s.Metrics()
	if m.Hits != 1 || m.Misses != 2 || m.Stored != 1 || m.Entries != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := New(Config{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Put(key(1), 1)
	s.Put(key(2), 2)
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("expected hit")
	}
	s.Put(key(3), 3)
	if _, ok := s.Get(key(2)); ok {
		t.Error("key 2 should have been LRU-evicted")
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Error("key 1 should have survived")
	}
	if _, ok := s.Get(key(3)); !ok {
		t.Error("key 3 should be present")
	}
	if m := s.Metrics(); m.EvictedLRU != 1 || m.Entries != 2 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	s, err := New(Config{MaxEntries: 4, TTL: time.Minute, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Put(key(1), 1)
	advance(30 * time.Second)
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("entry must survive half its TTL")
	}
	advance(31 * time.Second)
	if _, ok := s.Get(key(1)); ok {
		t.Error("entry must expire after its TTL")
	}
	if m := s.Metrics(); m.EvictedTTL != 1 || m.Entries != 0 {
		t.Errorf("metrics = %+v", m)
	}

	// Re-putting an expired key restarts its TTL.
	s.Put(key(1), 2)
	advance(59 * time.Second)
	if v, ok := s.Get(key(1)); !ok || v != 2 {
		t.Errorf("refreshed entry: %v, %v", v, ok)
	}
}

func TestPutReplacesAndRefreshes(t *testing.T) {
	s, err := New(Config{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(key(1), "old")
	s.Put(key(1), "new")
	if v, _ := s.Get(key(1)); v != "new" {
		t.Errorf("Get = %v", v)
	}
	if m := s.Metrics(); m.Entries != 1 || m.Stored != 2 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestCloseIdempotentAndInert(t *testing.T) {
	s, err := New(Config{MaxEntries: 2, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key(1), 1)
	s.Close()
	s.Close() // must not panic
	if _, ok := s.Get(key(1)); ok {
		t.Error("closed store must serve misses")
	}
	s.Put(key(2), 2)
	if m := s.Metrics(); m.Entries != 0 {
		t.Errorf("closed store accepted a Put: %+v", m)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := New(Config{MaxEntries: 8, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Put(key(i%16), i)
				s.Get(key((i + g) % 16))
				s.Metrics()
			}
		}(g)
	}
	wg.Wait()
}
