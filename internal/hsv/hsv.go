// Package hsv implements the Hue-Saturation-Value colour space used by the
// paper's shadow detector (Section 2 Step 5, Eq. 1-2), including the angular
// hue distance DH of Eq. 2.
package hsv

import (
	"math"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

// HSV is a colour in Hue-Saturation-Value space. H is in degrees [0,360);
// S and V are in [0,1].
type HSV struct {
	H, S, V float64
}

// FromRGB converts a 24-bit RGB colour to HSV.
func FromRGB(c imaging.Color) HSV {
	r := float64(c.R) / 255
	g := float64(c.G) / 255
	b := float64(c.B) / 255
	maxC := math.Max(r, math.Max(g, b))
	minC := math.Min(r, math.Min(g, b))
	delta := maxC - minC

	var h float64
	switch {
	case delta == 0:
		h = 0
	case maxC == r:
		h = 60 * math.Mod((g-b)/delta, 6)
	case maxC == g:
		h = 60 * ((b-r)/delta + 2)
	default: // maxC == b
		h = 60 * ((r-g)/delta + 4)
	}
	if h < 0 {
		h += 360
	}

	s := 0.0
	if maxC > 0 {
		s = delta / maxC
	}
	return HSV{H: h, S: s, V: maxC}
}

// ToRGB converts back to 24-bit RGB. The conversion is the standard
// hexcone inverse; FromRGB(ToRGB(c)) round-trips within quantisation error.
func (c HSV) ToRGB() imaging.Color {
	h := math.Mod(c.H, 360)
	if h < 0 {
		h += 360
	}
	s := clamp01(c.S)
	v := clamp01(c.V)

	cc := v * s
	x := cc * (1 - math.Abs(math.Mod(h/60, 2)-1))
	m := v - cc

	var r, g, b float64
	switch {
	case h < 60:
		r, g, b = cc, x, 0
	case h < 120:
		r, g, b = x, cc, 0
	case h < 180:
		r, g, b = 0, cc, x
	case h < 240:
		r, g, b = 0, x, cc
	case h < 300:
		r, g, b = x, 0, cc
	default:
		r, g, b = cc, 0, x
	}
	return imaging.Color{
		R: roundU8((r + m) * 255),
		G: roundU8((g + m) * 255),
		B: roundU8((b + m) * 255),
	}
}

// HueDist returns DH of Eq. 2: the angular distance between two hues,
// min(|h1-h2|, 360-|h1-h2|), always in [0,180].
func HueDist(h1, h2 float64) float64 {
	d := math.Abs(math.Mod(h1, 360) - math.Mod(h2, 360))
	if d > 180 {
		d = 360 - d
	}
	return d
}

// Dist returns DH between the hue components of two HSV colours (Eq. 2).
func Dist(a, b HSV) float64 { return HueDist(a.H, b.H) }

// Plane is a dense HSV raster, precomputed once per frame so the shadow
// detector does not reconvert pixels inside its per-pixel loop.
type Plane struct {
	W, H int
	Pix  []HSV
}

// PlaneFromImage converts an RGB image to an HSV plane.
func PlaneFromImage(img *imaging.Image) *Plane {
	p := &Plane{W: img.W, H: img.H, Pix: make([]HSV, len(img.Pix))}
	for i, c := range img.Pix {
		p.Pix[i] = FromRGB(c)
	}
	return p
}

// At returns the HSV value at (x, y).
func (p *Plane) At(x, y int) HSV { return p.Pix[y*p.W+x] }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func roundU8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}
