package hsv

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

func TestFromRGBKnownColors(t *testing.T) {
	tests := []struct {
		name string
		c    imaging.Color
		want HSV
	}{
		{"black", imaging.Color{R: 0, G: 0, B: 0}, HSV{0, 0, 0}},
		{"white", imaging.Color{R: 255, G: 255, B: 255}, HSV{0, 0, 1}},
		{"red", imaging.Color{R: 255, G: 0, B: 0}, HSV{0, 1, 1}},
		{"green", imaging.Color{R: 0, G: 255, B: 0}, HSV{120, 1, 1}},
		{"blue", imaging.Color{R: 0, G: 0, B: 255}, HSV{240, 1, 1}},
		{"yellow", imaging.Color{R: 255, G: 255, B: 0}, HSV{60, 1, 1}},
		{"cyan", imaging.Color{R: 0, G: 255, B: 255}, HSV{180, 1, 1}},
		{"magenta", imaging.Color{R: 255, G: 0, B: 255}, HSV{300, 1, 1}},
		{"gray", imaging.Color{R: 128, G: 128, B: 128}, HSV{0, 0, 128.0 / 255}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := FromRGB(tt.c)
			if math.Abs(got.H-tt.want.H) > 1e-9 ||
				math.Abs(got.S-tt.want.S) > 1e-9 ||
				math.Abs(got.V-tt.want.V) > 1e-9 {
				t.Errorf("FromRGB(%v) = %+v, want %+v", tt.c, got, tt.want)
			}
		})
	}
}

// Property: RGB → HSV → RGB round-trips exactly for every 8-bit colour we
// sample (conversion error stays under quantisation).
func TestRoundTripProperty(t *testing.T) {
	f := func(r, g, b uint8) bool {
		in := imaging.Color{R: r, G: g, B: b}
		out := FromRGB(in).ToRGB()
		return absInt(int(in.R)-int(out.R)) <= 1 &&
			absInt(int(in.G)-int(out.G)) <= 1 &&
			absInt(int(in.B)-int(out.B)) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: hue distance is symmetric, bounded by 180, and zero for equal
// hues.
func TestHueDistProperties(t *testing.T) {
	f := func(h1, h2 float64) bool {
		h1 = math.Mod(math.Abs(h1), 360)
		h2 = math.Mod(math.Abs(h2), 360)
		d := HueDist(h1, h2)
		return d >= 0 && d <= 180 &&
			math.Abs(d-HueDist(h2, h1)) < 1e-9 &&
			HueDist(h1, h1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestHueDistWraparound(t *testing.T) {
	tests := []struct {
		h1, h2, want float64
	}{
		{10, 350, 20},
		{0, 180, 180},
		{0, 181, 179},
		{90, 90, 0},
		{359, 1, 2},
	}
	for _, tt := range tests {
		if got := HueDist(tt.h1, tt.h2); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("HueDist(%v,%v) = %v, want %v", tt.h1, tt.h2, got, tt.want)
		}
	}
}

func TestDistUsesHueOnly(t *testing.T) {
	a := HSV{H: 100, S: 0.2, V: 0.9}
	b := HSV{H: 140, S: 0.8, V: 0.1}
	if got := Dist(a, b); got != 40 {
		t.Errorf("Dist = %v, want 40", got)
	}
}

func TestToRGBClampsInputs(t *testing.T) {
	// Out-of-range S/V must clamp, negative hue must wrap.
	c := HSV{H: -90, S: 2, V: -0.5}.ToRGB()
	if c != (imaging.Color{R: 0, G: 0, B: 0}) {
		t.Errorf("negative V should be black, got %v", c)
	}
	c2 := HSV{H: 480, S: 0.5, V: 0.5}.ToRGB() // 480° ≡ 120° (green-dominant)
	if !(c2.G > c2.R && c2.G > c2.B) {
		t.Errorf("hue 480 should be green-dominant, got %v", c2)
	}
}

func TestPlaneFromImage(t *testing.T) {
	img := imaging.NewImageFilled(3, 2, imaging.Color{R: 255, G: 0, B: 0})
	p := PlaneFromImage(img)
	if p.W != 3 || p.H != 2 || len(p.Pix) != 6 {
		t.Fatalf("plane shape wrong: %dx%d/%d", p.W, p.H, len(p.Pix))
	}
	got := p.At(2, 1)
	if got.H != 0 || got.S != 1 || got.V != 1 {
		t.Errorf("At = %+v, want pure red", got)
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
