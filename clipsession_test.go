package sljmotion_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"github.com/sljmotion/sljmotion"
	"github.com/sljmotion/sljmotion/internal/server"
)

// TestPublicClipSession drives the streaming-upload facade end to end: open
// a session against a running server, append the clip in chunks, seal it
// into content-addressed artifacts, and analyse it by hash.
func TestPublicClipSession(t *testing.T) {
	video, err := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
	if err != nil {
		t.Fatal(err)
	}
	manual := video.ManualAnnotation(sljmotion.DefaultAnnotationError(), 1)

	cfg := sljmotion.DefaultConfig()
	cfg.Pose.Population = 40
	cfg.Pose.Generations = 40
	cfg.Pose.Patience = 10
	cfg.Pose.RefineRounds = 1
	s, err := server.NewWithOptions(cfg, nil, server.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer func() {
		hs.Close()
		_ = s.Close(context.Background())
	}()

	cs, err := sljmotion.OpenClipSession(hs.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cs.ID() == "" {
		t.Fatal("empty clip id")
	}
	for i := 0; i < len(video.Frames); i += 4 {
		end := i + 4
		if end > len(video.Frames) {
			end = len(video.Frames)
		}
		if err := cs.AppendFrames(video.Frames[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	seal, err := cs.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if seal.Frames != len(video.Frames) || seal.FramesHash == "" || seal.SilhouettesHash == "" {
		t.Fatalf("seal = %+v", seal)
	}
	if seal.EagerReused+seal.EagerResegmented != len(video.Frames) {
		t.Fatalf("seal accounting: %d reused + %d resegmented != %d frames",
			seal.EagerReused, seal.EagerResegmented, len(video.Frames))
	}
	// Sealing again through the facade is idempotent.
	again, err := cs.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if *again != *seal {
		t.Fatalf("reseal = %+v, want %+v", again, seal)
	}

	raw, err := cs.Analyze(seal, manual, sljmotion.ClipAnalyzeOptions{
		Stages:             "segmentation",
		IncludeSilhouettes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Frames      int      `json:"frames"`
		Stages      []string `json:"stages"`
		Silhouettes []any    `json:"silhouettes"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("analysis document: %v\n%s", err, raw)
	}
	if doc.Frames != len(video.Frames) || len(doc.Silhouettes) != len(video.Frames) {
		t.Fatalf("analysis document: frames %d, silhouettes %d, want %d each",
			doc.Frames, len(doc.Silhouettes), len(video.Frames))
	}

	// An unsealed hash-less analysis and a bad session id surface the
	// service's coded error envelope through the facade.
	if _, err := sljmotion.OpenClipSession(hs.URL+"/nope", nil); err == nil {
		t.Error("OpenClipSession against a bad path succeeded")
	}
}
