package sljmotion

// ClipSession is the streaming-upload client of the web service's chunked
// clip-ingest protocol (DESIGN.md §14): open a session, append frame
// chunks as they become available — the server segments them speculatively
// while the rest of the clip is still uploading — then seal to obtain
// content hashes and analyse the stored clip by hash, without re-uploading
// a byte. The analysis response is byte-identical (modulo stage timings)
// to submitting the same frames inline.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"strconv"
	"strings"

	"github.com/sljmotion/sljmotion/internal/imaging"
)

// ClipSeal is the terminal document of a sealed ingest session: the
// content hashes a by-hash analysis needs, plus how much of the clip's
// segmentation overlapped the upload.
type ClipSeal struct {
	ClipID           string `json:"clip_id"`
	FramesHash       string `json:"frames_hash"`
	SilhouettesHash  string `json:"silhouettes_hash"`
	Frames           int    `json:"frames"`
	EagerReused      int    `json:"eager_reused"`
	EagerResegmented int    `json:"eager_resegmented"`
}

// ClipAnalyzeOptions shape a by-hash analysis of a sealed clip.
type ClipAnalyzeOptions struct {
	// Stages selects a pipeline range in ParseStageSelection form ("" = all).
	Stages string
	// IncludePoses / IncludeSilhouettes shape the response document.
	IncludePoses       bool
	IncludeSilhouettes bool
}

// ClipSession is one chunked clip upload against a running slj-serve.
type ClipSession struct {
	base   string
	client *http.Client
	id     string
	chunk  int
}

// OpenClipSession opens an ingest session on the server at base (e.g.
// "http://localhost:8080"). client may be nil for http.DefaultClient.
func OpenClipSession(base string, client *http.Client) (*ClipSession, error) {
	if client == nil {
		client = http.DefaultClient
	}
	cs := &ClipSession{base: strings.TrimRight(base, "/"), client: client}
	resp, err := client.Post(cs.base+"/v1/clips", "application/json", nil)
	if err != nil {
		return nil, fmt.Errorf("sljmotion: open clip session: %w", err)
	}
	defer resp.Body.Close()
	var doc struct {
		ClipID string `json:"clip_id"`
	}
	if err := decodeOrError(resp, http.StatusCreated, &doc); err != nil {
		return nil, err
	}
	if doc.ClipID == "" {
		return nil, fmt.Errorf("sljmotion: open clip session: empty clip id")
	}
	cs.id = doc.ClipID
	return cs, nil
}

// ID returns the server-assigned clip id.
func (cs *ClipSession) ID() string { return cs.id }

// AppendFrames uploads the next chunk of frames. Chunks are numbered
// automatically; the server rejects anything out of sequence, so a failed
// append can simply be retried.
func (cs *ClipSession) AppendFrames(frames []*Image) error {
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	if err := mw.WriteField("chunk", strconv.Itoa(cs.chunk)); err != nil {
		return err
	}
	for i, f := range frames {
		part, err := mw.CreateFormFile("frames", fmt.Sprintf("frame_%04d.ppm", i))
		if err != nil {
			return err
		}
		if err := imaging.EncodePPM(part, f); err != nil {
			return err
		}
	}
	if err := mw.Close(); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut,
		cs.base+"/v1/clips/"+cs.id+"/frames", &body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := cs.client.Do(req)
	if err != nil {
		return fmt.Errorf("sljmotion: append chunk %d: %w", cs.chunk, err)
	}
	defer resp.Body.Close()
	if err := decodeOrError(resp, http.StatusOK, &struct{}{}); err != nil {
		return err
	}
	cs.chunk++
	return nil
}

// Seal closes the session: the server finishes segmentation (reusing what
// it already computed during the upload) and stores the frames and
// silhouettes artifacts. Idempotent — resealing returns the same document.
func (cs *ClipSession) Seal() (*ClipSeal, error) {
	resp, err := cs.client.Post(cs.base+"/v1/clips/"+cs.id+"/seal", "application/json", nil)
	if err != nil {
		return nil, fmt.Errorf("sljmotion: seal clip: %w", err)
	}
	defer resp.Body.Close()
	var doc ClipSeal
	if err := decodeOrError(resp, http.StatusOK, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Analyze runs the full analysis of the sealed clip by content hash and
// returns the service's JSON response document. The clip must be sealed
// first. The response is byte-identical (modulo the stage_ms timings) to
// submitting the same frames inline.
func (cs *ClipSession) Analyze(seal *ClipSeal, manualFirst Pose, opts ClipAnalyzeOptions) ([]byte, error) {
	reqDoc := map[string]any{
		"frames_ref": seal.FramesHash,
		"manual_first": map[string]any{
			"x": manualFirst.X, "y": manualFirst.Y, "rho": manualFirst.Rho[:],
		},
	}
	if opts.Stages != "" {
		reqDoc["stages"] = opts.Stages
	}
	if opts.IncludePoses {
		reqDoc["poses"] = true
	}
	if opts.IncludeSilhouettes {
		reqDoc["silhouettes"] = true
	}
	body, err := json.Marshal(reqDoc)
	if err != nil {
		return nil, err
	}
	resp, err := cs.client.Post(cs.base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("sljmotion: analyze by hash: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, serviceError(resp.StatusCode, raw)
	}
	return raw, nil
}

// decodeOrError decodes the expected success document, or surfaces the
// service's error envelope.
func decodeOrError(resp *http.Response, want int, into any) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return serviceError(resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, into)
}

// serviceError renders the service's JSON error envelope as a Go error.
func serviceError(status int, raw []byte) error {
	var env struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if json.Unmarshal(raw, &env) == nil && env.Error != "" {
		if env.Code != "" {
			return fmt.Errorf("sljmotion: service error %d (%s): %s", status, env.Code, env.Error)
		}
		return fmt.Errorf("sljmotion: service error %d: %s", status, env.Error)
	}
	return fmt.Errorf("sljmotion: service error %d: %s", status, bytes.TrimSpace(raw))
}
