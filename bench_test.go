// Benchmarks: one target per figure and table of the paper's evaluation
// (DESIGN.md §4). Each bench times the hot path of its experiment on the
// canonical synthetic workload; cmd/slj-bench regenerates the full
// paper-vs-measured reports built on the same code.
package sljmotion_test

import (
	"testing"

	"github.com/sljmotion/sljmotion/internal/background"
	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/scoring"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/shadow"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/synth"
	"github.com/sljmotion/sljmotion/internal/track"
)

// benchVideo renders the canonical clip once per benchmark.
func benchVideo(b *testing.B) *synth.Video {
	b.Helper()
	v, err := synth.Generate(synth.DefaultJumpParams())
	if err != nil {
		b.Fatal(err)
	}
	return v
}

func benchSilhouettes(b *testing.B, v *synth.Video) []segmentation.Silhouette {
	b.Helper()
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sils, err := pipe.Run(v.Frames)
	if err != nil {
		b.Fatal(err)
	}
	return sils
}

// BenchmarkFigure1BackgroundEstimation times Step 1 (change detection) over
// the 20-frame clip — the workload behind Figure 1.
func BenchmarkFigure1BackgroundEstimation(b *testing.B) {
	v := benchVideo(b)
	est := &background.ChangeDetection{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(v.Frames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2ForegroundStages times Steps 2-5 on a single frame
// against a known background — the per-frame cost behind Figure 2.
func BenchmarkFigure2ForegroundStages(b *testing.B) {
	v := benchVideo(b)
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.SegmentFrame(v.Frames[8], v.Background); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3ShadowRemoval times the Eq. (1) shadow detector on the
// landing frame's foreground — the workload behind Figure 3.
func BenchmarkFigure3ShadowRemoval(b *testing.B) {
	v := benchVideo(b)
	det, err := shadow.NewDetector(shadow.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	fg := v.BodyMasks[14].Clone()
	if err := fg.Or(v.ShadowMasks[14]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.Remove(v.Frames[14], v.Background, fg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4StickModel times forward kinematics plus capsule
// rasterisation of the stick model of Figure 4.
func BenchmarkFigure4StickModel(b *testing.B) {
	d := stickmodel.ChildDimensions(66)
	var p stickmodel.Pose
	p.X, p.Y = 96, 72
	p.Rho = [stickmodel.NumSticks]float64{5, 10, 185, 178, 8, 178, 182, 95}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := p.Rasterize(d, 192, 144)
		if m.Empty() {
			b.Fatal("empty raster")
		}
	}
}

// BenchmarkFigure5AngleConvention times the Dir/AngleOf round-trip sweep of
// the Figure 5 angle convention.
func BenchmarkFigure5AngleConvention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for deg := 0.0; deg < 360; deg++ {
			if stickmodel.AngleOf(stickmodel.Dir(deg)) < 0 {
				b.Fatal("negative angle")
			}
		}
	}
}

// BenchmarkFigure6SilhouetteSequence times the full five-step segmentation
// of the whole clip — the workload behind Figure 6.
func BenchmarkFigure6SilhouetteSequence(b *testing.B) {
	v := benchVideo(b)
	pipe, err := segmentation.New(segmentation.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Run(v.Frames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7GAPoseEstimation times one temporally seeded GA fit
// (frame 2 from the manual first frame) — the workload behind Figure 7.
func BenchmarkFigure7GAPoseEstimation(b *testing.B) {
	v := benchVideo(b)
	sils := benchSilhouettes(b, v)
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	est, err := pose.NewEstimator(v.Dims, pose.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := est.Calibrate(sils[0], manual); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateNext(sils[1], manual); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Standards times the construction and cross-validation of
// the Table 1 standards against the Table 2 rules.
func BenchmarkTable1Standards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		std := scoring.Standards()
		rules := scoring.Rules()
		if len(std) != 7 || len(rules) != 7 {
			b.Fatal("tables wrong")
		}
	}
}

// BenchmarkTable2ScoringRules times rule evaluation over a 20-frame pose
// sequence — the workload behind Table 2.
func BenchmarkTable2ScoringRules(b *testing.B) {
	v := benchVideo(b)
	scorer := scoring.NewScorer()
	initW, airW := track.FixedWindows(len(v.Truth))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scorer.Score(v.Truth, initW, airW); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSeeding times the cold-start GA baseline of [5]
// (experiment A1's expensive arm).
func BenchmarkAblationSeeding(b *testing.B) {
	v := benchVideo(b)
	sils := benchSilhouettes(b, v)
	est, err := pose.NewEstimator(v.Dims, pose.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	if _, err := est.Calibrate(sils[0], manual); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateCold(sils[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBackground times the temporal-median estimator
// (experiment A2's strongest alternative).
func BenchmarkAblationBackground(b *testing.B) {
	v := benchVideo(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (background.Median{}).Estimate(v.Frames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationShadow times Steps 2-4 without shadow removal
// (experiment A3's ablated pipeline) for contrast with Figure 2's bench.
func BenchmarkAblationShadow(b *testing.B) {
	v := benchVideo(b)
	cfg := segmentation.DefaultConfig()
	cfg.DisableShadowRemoval = true
	pipe, err := segmentation.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.SegmentFrame(v.Frames[8], v.Background); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEq3Fitness times a single evaluation of the paper's fitness
// function (Eq. 3) — the innermost hot path of pose estimation: mean over
// silhouette points of the thickness-normalised distance to the nearest
// stick.
func BenchmarkEq3Fitness(b *testing.B) {
	v := benchVideo(b)
	sils := benchSilhouettes(b, v)
	est, err := pose.NewEstimator(v.Dims, pose.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Fitness(v.Truth[8], sils[8]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContainment times the chromosome validity check ("not in the
// boundary of the silhouette") that gates every GA offspring.
func BenchmarkContainment(b *testing.B) {
	v := benchVideo(b)
	mask := v.BodyMasks[8]
	p := v.Truth[8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.ContainmentFraction(v.Dims, mask) <= 0 {
			b.Fatal("containment broken")
		}
	}
}

// BenchmarkEndToEndAnalyze times the complete system (Sections 2-4) on one
// clip: segmentation, calibrated GA tracking of all frames, phase
// detection, scoring.
func BenchmarkEndToEndAnalyze(b *testing.B) {
	v := benchVideo(b)
	manual := v.ManualAnnotation(synth.DefaultAnnotationError(), 1)
	an, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.Analyze(v.Frames, manual); err != nil {
			b.Fatal(err)
		}
	}
}
