// Package sljmotion is the public API of the standing-long-jump motion
// analysis system — a from-scratch Go implementation of "Motion Analysis for
// the Standing Long Jump" (Hsu et al., ICDCSW 2006).
//
// The system takes a side-view video clip of a standing long jump and
// produces:
//
//   - the segmented silhouette of the jumper in every frame (Section 2 of
//     the paper: background estimation, background subtraction, noise/spot
//     removal, hole filling, HSV shadow removal);
//   - a stick-model pose (x0, y0, ρ0..ρ7) per frame, fitted by a genetic
//     algorithm with temporal seeding (Section 3);
//   - jump-phase tracking (initiation / flight / landing), jump distance;
//   - a score report over the seven rules of Table 2 with advice for the
//     jumper (Section 4).
//
// # Quick start
//
// Analysis is request-based: an AnalysisRequest carries the input frames,
// the manual first-frame pose and (optionally) a stage selection and
// response-shaping options.
//
//	video, _ := sljmotion.GenerateSyntheticJump(sljmotion.DefaultJumpParams())
//	manual := video.ManualAnnotation(sljmotion.DefaultAnnotationError(), 1)
//	analyzer, _ := sljmotion.NewAnalyzer(sljmotion.DefaultConfig())
//	result, _ := analyzer.Run(context.Background(), sljmotion.AnalysisRequest{
//		Frames:      video.Frames,
//		ManualFirst: manual,
//	}, nil)
//	fmt.Print(result.Report)
//
// The zero Stages value runs the full pipeline; Analyze(frames, manual)
// remains as shorthand for exactly that. Partial selections run a stage
// subrange over stored artifacts — segmentation only, pose estimation from
// cached silhouettes, or tracking+scoring re-runs from cached poses:
//
//	sils, _ := analyzer.Run(ctx, sljmotion.AnalysisRequest{
//		Frames: video.Frames,
//		Stages: sljmotion.OnlyStage(sljmotion.StageSegmentation),
//	}, nil)
//	rescored, _ := analyzer.Run(ctx, sljmotion.AnalysisRequest{
//		Poses:      result.Poses,
//		Dimensions: result.Dimensions,
//		Stages:     sljmotion.SelectStages(sljmotion.StageTracking, sljmotion.StageScoring),
//	}, nil)
//
// Real footage can be supplied as a slice of *sljmotion.Image decoded from
// PPM files (ReadPPMFile); the synthetic generator exists because the
// original CCD footage is unavailable (see DESIGN.md §1).
//
// # Streaming progress
//
// Asynchronous jobs are observable live instead of by polling: a JobQueue
// streams every lifecycle transition and per-stage progress tick over
// Watch, and the web service exposes the same feed as server-sent events
// (DESIGN.md §12):
//
//	id, _ := q.SubmitJob(video.Frames, manual)
//	ch, _ := q.Watch(context.Background(), id)
//	for e := range ch { // queued → running → stage ... → done
//		fmt.Printf("#%d %s %s\n", e.Seq, e.Type, e.Stage)
//	}
//	result, _ := q.JobResult(id) // terminal event ⇒ the result is ready
//
// Over HTTP the stream lives at GET /v1/jobs/{id}/events (and the global
// dashboard feed at GET /v1/events). Try it from a shell — submit a job,
// then:
//
//	curl -N http://localhost:8080/v1/jobs/<id>/events
//
// Frames carry the per-job sequence number as the SSE id, so a dropped
// connection resumes losslessly with the standard Last-Event-ID header
// (curl -N -H 'Last-Event-ID: 3' ...); the terminal frame of a finished
// job embeds the result document, so a streaming client never polls.
package sljmotion

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/sljmotion/sljmotion/internal/core"
	"github.com/sljmotion/sljmotion/internal/dispatch"
	"github.com/sljmotion/sljmotion/internal/events"
	"github.com/sljmotion/sljmotion/internal/imaging"
	"github.com/sljmotion/sljmotion/internal/jobs"
	"github.com/sljmotion/sljmotion/internal/journal"
	"github.com/sljmotion/sljmotion/internal/metrics"
	"github.com/sljmotion/sljmotion/internal/obs"
	"github.com/sljmotion/sljmotion/internal/pose"
	"github.com/sljmotion/sljmotion/internal/scoring"
	"github.com/sljmotion/sljmotion/internal/segmentation"
	"github.com/sljmotion/sljmotion/internal/stickmodel"
	"github.com/sljmotion/sljmotion/internal/synth"
	"github.com/sljmotion/sljmotion/internal/track"
)

// Re-exported raster types (internal/imaging).
type (
	// Image is an RGB video frame.
	Image = imaging.Image
	// Color is a 24-bit RGB pixel.
	Color = imaging.Color
	// Mask is a binary raster (silhouettes, shadow masks).
	Mask = imaging.Mask
	// Gray is an 8-bit grayscale raster.
	Gray = imaging.Gray
	// Vec2 is a 2-D point in image coordinates.
	Vec2 = imaging.Vec2
)

// Re-exported stick-model types (internal/stickmodel).
type (
	// Pose is the stick-model state (x0, y0, ρ0..ρ7) of Section 3.
	Pose = stickmodel.Pose
	// Dimensions holds per-stick lengths and thicknesses in pixels.
	Dimensions = stickmodel.Dimensions
	// StickID identifies one of the eight sticks S0-S7 (Figure 4).
	StickID = stickmodel.StickID
	// JointID identifies a named joint of the kinematic tree.
	JointID = stickmodel.JointID
)

// Stick identifiers, in the paper's numbering (Figure 4).
const (
	Trunk    = stickmodel.Trunk
	Neck     = stickmodel.Neck
	UpperArm = stickmodel.UpperArm
	Thigh    = stickmodel.Thigh
	Head     = stickmodel.Head
	Forearm  = stickmodel.Forearm
	Shank    = stickmodel.Shank
	Foot     = stickmodel.Foot
	// NumSticks is the stick count of the model.
	NumSticks = stickmodel.NumSticks
)

// Re-exported pipeline types.
type (
	// Config assembles all stage configurations of the analyzer.
	Config = core.Config
	// Result is the complete analysis of one clip.
	Result = core.Result
	// Silhouette is the segmented human object in one frame.
	Silhouette = segmentation.Silhouette
	// SegmentationConfig parameterises the five-step pipeline of Section 2.
	SegmentationConfig = segmentation.Config
	// PoseConfig parameterises the GA pose estimation of Section 3.
	PoseConfig = pose.Config
	// Estimate is a per-frame pose estimation outcome.
	Estimate = pose.Estimate
	// Report is the Table 2 scoring outcome with advice.
	Report = scoring.Report
	// RuleResult is the outcome of a single scoring rule.
	RuleResult = scoring.RuleResult
	// Rule is one row of Table 2.
	Rule = scoring.Rule
	// Standard is one row of Table 1.
	Standard = scoring.Standard
	// TrackAnalysis carries phases, trajectories and jump distance.
	TrackAnalysis = track.Analysis
	// Window is an inclusive frame range used by scoring stages.
	Window = track.Window
	// PoseError aggregates pose-vs-truth error measures.
	PoseError = metrics.PoseError
	// MaskScores aggregates mask overlap measures (IoU, precision, recall).
	MaskScores = metrics.MaskScores
)

// Window modes for scoring stages.
const (
	// WindowsFixed reproduces the paper's fixed frame windows.
	WindowsFixed = core.WindowsFixed
	// WindowsDetected derives the windows from takeoff/landing detection.
	WindowsDetected = core.WindowsDetected
)

// Re-exported synthetic-data types (the data substrate replacing the
// paper's CCD footage; see DESIGN.md §1).
type (
	// Video is a synthetic jump clip with ground truth.
	Video = synth.Video
	// JumpParams configures the synthetic jump generator.
	JumpParams = synth.JumpParams
	// FormDefects plants form errors for scoring experiments.
	FormDefects = synth.FormDefects
	// ManualAnnotationError models the first-frame annotation imprecision.
	ManualAnnotationError = synth.ManualAnnotationError
)

// Analyzer is the end-to-end system: frames in, analysis out.
type Analyzer struct {
	inner *core.Analyzer
}

// NewAnalyzer builds an analyzer from a configuration (DefaultConfig for
// the paper-faithful setup).
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	inner, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Analyzer{inner: inner}, nil
}

// Analyze runs segmentation, pose estimation, tracking and scoring on a
// clip. manualFirst is the hand-drawn stick figure for the first frame that
// the paper's method requires for calibration.
func (a *Analyzer) Analyze(frames []*Image, manualFirst Pose) (*Result, error) {
	return a.inner.Analyze(frames, manualFirst)
}

// AnalyzeContext is Analyze with cooperative cancellation and per-stage
// progress reporting (see DESIGN.md §8); progress may be nil.
func (a *Analyzer) AnalyzeContext(ctx context.Context, frames []*Image, manualFirst Pose, progress func(PipelineStage)) (*Result, error) {
	return a.inner.AnalyzeContext(ctx, frames, manualFirst, progress)
}

// Run executes the stages selected by the request (see AnalysisRequest):
// the full pipeline for the zero Stages value, or a subrange over supplied
// artifacts — segmentation only, pose estimation from stored silhouettes,
// tracking+scoring re-runs from stored poses. ctx cancels cooperatively and
// progress (may be nil) observes each executed stage (DESIGN.md §9).
func (a *Analyzer) Run(ctx context.Context, req AnalysisRequest, progress func(PipelineStage)) (*Result, error) {
	return a.inner.Run(ctx, req, progress)
}

// Config returns the analyzer configuration.
func (a *Analyzer) Config() Config { return a.inner.Config() }

// Re-exported request types (internal/core; DESIGN.md §9).
type (
	// AnalysisRequest is a staged analysis request: input artifacts plus
	// the stage selection to run. The zero Stages value is the full
	// pipeline; later entry points consume stored Silhouettes or
	// Poses+Dimensions instead of frames. IncludePoses and
	// IncludeSilhouettes shape serialised responses (the web service);
	// the in-process Result always carries every computed artifact.
	AnalysisRequest = core.Request
	// StageSelection is a contiguous, inclusive range of pipeline stages.
	StageSelection = core.StageSelection
)

// AllStages selects the full pipeline explicitly (same as the zero value).
func AllStages() StageSelection { return core.AllStages() }

// OnlyStage selects a single pipeline stage.
func OnlyStage(s PipelineStage) StageSelection { return core.OnlyStage(s) }

// SelectStages selects the inclusive stage range first..last.
func SelectStages(first, last PipelineStage) StageSelection { return core.SelectStages(first, last) }

// ParseStageSelection parses "all", one stage name ("segmentation"), or an
// inclusive range "first..last" ("tracking..scoring").
func ParseStageSelection(s string) (StageSelection, error) { return core.ParseStageSelection(s) }

// Re-exported asynchronous job types (internal/jobs; DESIGN.md §8, §10).
type (
	// JobState is a job lifecycle state: queued, running, done, failed.
	JobState = jobs.State
	// JobStatus is a point-in-time snapshot of one job.
	JobStatus = jobs.Status
	// JobMetrics is a queue/throughput/latency snapshot.
	JobMetrics = jobs.Metrics
	// JobNodeMetrics is one worker node's counters inside a remote
	// dispatcher's JobMetrics (DESIGN.md §10).
	JobNodeMetrics = jobs.NodeMetrics
	// JobDispatcher is the pluggable job backend: the in-process worker
	// pool by default, or the remote HTTP fan-out dispatcher, with the
	// submit/poll lifecycle unchanged (DESIGN.md §9-10).
	JobDispatcher = jobs.Dispatcher
	// JobPayload is one unit of asynchronous work as serializable data —
	// what a JobQueue actually submits to its dispatcher (DESIGN.md §10).
	JobPayload = jobs.Payload
	// JobExecutor turns payloads into results; the Manager runs one
	// locally, worker nodes run the same payloads remotely.
	JobExecutor = jobs.Executor
	// JobJournal is the durability seam of a job queue: an append-only
	// record sink replayed on startup (DESIGN.md §11). OpenJobJournal
	// returns the canonical file-backed implementation.
	JobJournal = jobs.Journal
	// JobJournalFile is the file-backed JSON-lines journal: segment
	// rotation, live-record compaction, fsync on terminal transitions,
	// torn-final-record recovery.
	JobJournalFile = journal.Journal
	// JobFilter selects jobs for a history listing (JobQueue.Jobs).
	JobFilter = jobs.JobFilter
	// JobEvent is one streamed job event (JobQueue.Watch): lifecycle
	// transitions, per-stage progress, snapshots after a resync. Seq is
	// monotonic per job and doubles as the SSE resume token (DESIGN.md
	// §12).
	JobEvent = events.Event
	// JobEventType names one kind of JobEvent.
	JobEventType = events.Type
	// PipelineStage names one of the four analysis phases.
	PipelineStage = core.Stage
	// JobTrace is one job's span tree snapshot (JobQueue.Trace): the
	// lifecycle from submission through queue wait, the executed pipeline
	// stages and the terminal publish, each with wall-clock timings
	// (DESIGN.md §13).
	JobTrace = obs.TraceDoc
	// TraceSpan is one node of a JobTrace.
	TraceSpan = obs.SpanDoc
)

// Job event types.
const (
	JobEventQueued   = events.TypeQueued
	JobEventRunning  = events.TypeRunning
	JobEventStage    = events.TypeStage
	JobEventDone     = events.TypeDone
	JobEventFailed   = events.TypeFailed
	JobEventEvicted  = events.TypeEvicted
	JobEventSnapshot = events.TypeSnapshot
	JobEventResync   = events.TypeResync
)

// Job lifecycle states and pipeline stages.
const (
	JobQueued  = jobs.StateQueued
	JobRunning = jobs.StateRunning
	JobDone    = jobs.StateDone
	JobFailed  = jobs.StateFailed

	StageSegmentation = core.StageSegmentation
	StagePose         = core.StagePose
	StageTracking     = core.StageTracking
	StageScoring      = core.StageScoring
)

// Asynchronous submission errors.
var (
	// ErrQueueFull is the retryable backpressure signal of SubmitJob.
	ErrQueueFull = jobs.ErrQueueFull
	// ErrJobNotFound marks an unknown or expired job id.
	ErrJobNotFound = jobs.ErrNotFound
	// ErrJobNotFinished is returned by JobResult while the job runs.
	ErrJobNotFinished = jobs.ErrNotFinished
)

// JobQueueOptions sizes an asynchronous analysis queue.
type JobQueueOptions struct {
	// Workers is the analysis worker pool size (>= 1).
	Workers int
	// QueueSize bounds how many jobs may wait beyond the running ones.
	QueueSize int
	// ResultTTL evicts finished results this long after completion;
	// 0 keeps them until Close.
	ResultTTL time.Duration
	// Journal makes the queue durable: submissions, transitions and
	// evictions are appended to it and NewJobQueue replays the log —
	// interrupted jobs re-run, finished results stay pollable across a
	// restart. Open one with OpenJobJournal; the caller closes it after
	// the queue closes. Restored results of earlier processes are JSON
	// documents — read them with JobResultJSON.
	Journal JobJournal
}

// DefaultJobQueueOptions returns a small in-process queue configuration
// (jobs.DefaultConfig).
func DefaultJobQueueOptions() JobQueueOptions {
	d := jobs.DefaultConfig()
	return JobQueueOptions{Workers: d.Workers, QueueSize: d.QueueSize, ResultTTL: d.ResultTTL}
}

// JobQueue runs analyses asynchronously: Submit encodes an AnalysisRequest
// into a serializable JobPayload and enqueues it into the configured
// dispatcher (by default a bounded queue drained by an in-process worker
// pool; optionally a remote fan-out over slj-serve worker nodes), and the
// job is polled via JobStatus / JobResult. It is the in-process equivalent
// of the web service's POST /v1/jobs path (DESIGN.md §8-10).
type JobQueue struct {
	mgr jobs.Dispatcher
	fp  string // config fingerprint stamped into payloads
}

// NewJobQueue builds an asynchronous analysis queue over the given analyzer
// configuration, backed by the in-process worker pool. The configuration is
// validated before the pool starts, so the error path leaks no goroutines.
func NewJobQueue(cfg Config, opts JobQueueOptions) (*JobQueue, error) {
	an, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	mgr, err := jobs.New(jobs.Config{
		Workers:   opts.Workers,
		QueueSize: opts.QueueSize,
		ResultTTL: opts.ResultTTL,
		Journal:   opts.Journal,
	}, jobs.ExecutorFunc(func(ctx context.Context, p JobPayload, progress func(string)) (any, error) {
		req, err := p.AnalysisRequest()
		if err != nil {
			return nil, err
		}
		return an.Run(ctx, req, func(s core.Stage) {
			progress(string(s))
		})
	}))
	if err != nil {
		return nil, err
	}
	return &JobQueue{mgr: mgr, fp: jobs.ConfigFingerprint(cfg)}, nil
}

// NewJobQueueWithDispatcher builds an asynchronous analysis queue over an
// explicit job backend — the dispatcher executes payloads itself, the
// queue only encodes and routes them. On success the queue takes ownership
// of closing the dispatcher; on error the caller still owns it.
func NewJobQueueWithDispatcher(cfg Config, d JobDispatcher) (*JobQueue, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &JobQueue{mgr: d, fp: jobs.ConfigFingerprint(cfg)}, nil
}

// NewRemoteJobQueue builds an asynchronous analysis queue whose jobs fan
// out over remote slj-serve worker nodes (started with -worker) instead of
// an in-process pool: payloads are hash-routed by their cache key, so
// identical clips land on the node that already cached their result. cfg
// must match the worker nodes' configuration for the keys to line up.
// Results arrive as the service's JSON documents — poll them with
// JobResultJSON (DESIGN.md §10).
func NewRemoteJobQueue(cfg Config, nodes []string) (*JobQueue, error) {
	return NewRemoteJobQueueWithOptions(cfg, RemoteJobQueueOptions{Nodes: nodes})
}

// RemoteJobQueueOptions configures a remote fan-out queue beyond its node
// list.
type RemoteJobQueueOptions struct {
	// Nodes is the initial worker membership (base URLs). It may be empty:
	// an elastic fleet starts with zero members and grows via JoinNode.
	Nodes []string
	// Replicate stamps every payload with its ring successor so worker
	// nodes mirror cache fills and pulled artifacts there — a node death
	// then fails over to a warm cache instead of recomputing (DESIGN.md §16).
	Replicate bool
	// ArtifactOrigin is this process's public base URL, stamped into
	// by-reference payloads so workers know where to pull artifacts.
	ArtifactOrigin string
}

// NewRemoteJobQueueWithOptions is NewRemoteJobQueue with the elastic-fleet
// knobs exposed: an optionally empty starting membership, successor
// replication, and an artifact pull origin.
func NewRemoteJobQueueWithOptions(cfg Config, opts RemoteJobQueueOptions) (*JobQueue, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d, err := dispatch.New(dispatch.Config{
		Nodes:          opts.Nodes,
		Replicate:      opts.Replicate,
		ArtifactOrigin: opts.ArtifactOrigin,
	})
	if err != nil {
		return nil, err
	}
	return &JobQueue{mgr: d, fp: jobs.ConfigFingerprint(cfg)}, nil
}

// Fleet membership types of an elastic remote queue (DESIGN.md §16).
type (
	// FleetView is one immutable snapshot of the dispatch membership: the
	// epoch (bumped on every ring rebuild) and the per-node states.
	FleetView = jobs.FleetView
	// FleetNode is one member's state within a FleetView.
	FleetNode = jobs.FleetNode
)

// ErrFleetUnsupported is returned by the fleet methods of a queue whose
// backend has no runtime membership (the in-process pool).
var ErrFleetUnsupported = errors.New("sljmotion: this queue's backend does not support fleet management")

// fleet unwraps the backend's membership capability.
func (q *JobQueue) fleet() (jobs.FleetManager, error) {
	if fm, ok := q.mgr.(jobs.FleetManager); ok {
		return fm, nil
	}
	return nil, ErrFleetUnsupported
}

// Fleet snapshots the current membership of a remote queue.
func (q *JobQueue) Fleet() (FleetView, error) {
	fm, err := q.fleet()
	if err != nil {
		return FleetView{}, err
	}
	return fm.Fleet(), nil
}

// JoinFleetNode admits a worker node (base URL, consistent-hash weight >= 1;
// 0 means 1) into a remote queue's membership. The node is health-probed
// first and refused if unreachable. Joining is idempotent; re-announcing an
// unchanged member keeps the current epoch.
func (q *JobQueue) JoinFleetNode(url string, weight int) (FleetView, error) {
	fm, err := q.fleet()
	if err != nil {
		return FleetView{}, err
	}
	return fm.JoinNode(url, weight)
}

// DrainFleetNode starts a graceful drain: the node stops receiving new keys
// immediately, its running jobs finish, and the membership then forgets it.
// Draining the last routable member is refused.
func (q *JobQueue) DrainFleetNode(url string) (FleetView, error) {
	fm, err := q.fleet()
	if err != nil {
		return FleetView{}, err
	}
	return fm.DrainNode(url)
}

// Submit encodes one staged analysis request into a serializable payload
// and enqueues it, returning the job id immediately. A full queue returns
// ErrQueueFull — retryable backpressure, not failure.
func (q *JobQueue) Submit(req AnalysisRequest) (string, error) {
	p, err := jobs.NewAnalysisPayload(q.fp, req)
	if err != nil {
		return "", err
	}
	return q.mgr.Submit(p)
}

// SubmitJob enqueues one full-pipeline clip analysis: shorthand for Submit
// of a full-range AnalysisRequest.
func (q *JobQueue) SubmitJob(frames []*Image, manualFirst Pose) (string, error) {
	return q.Submit(AnalysisRequest{Frames: frames, ManualFirst: manualFirst})
}

// JobStatus snapshots a job's lifecycle state and current pipeline stage.
func (q *JobQueue) JobStatus(id string) (JobStatus, error) { return q.mgr.Status(id) }

// JobResult returns the finished analysis: ErrJobNotFinished while the job
// is queued or running, the analysis error if it failed. Remote queues
// produce JSON documents, not in-process Results — use JobResultJSON there.
func (q *JobQueue) JobResult(id string) (*Result, error) {
	val, err := q.mgr.Result(id)
	if err != nil {
		return nil, err
	}
	res, ok := val.(*Result)
	if !ok {
		if _, isJSON := val.(json.RawMessage); isJSON {
			return nil, errors.New("sljmotion: remote job results are JSON documents; use JobResultJSON")
		}
		return nil, fmt.Errorf("sljmotion: unexpected job result type %T", val)
	}
	return res, nil
}

// JobResultJSON returns the finished analysis as the web service's JSON
// document (AnalysisResponse). It is how results of a remote job queue are
// read; in-process queues hold Results instead — use JobResult there.
func (q *JobQueue) JobResultJSON(id string) ([]byte, error) {
	val, err := q.mgr.Result(id)
	if err != nil {
		return nil, err
	}
	raw, ok := val.(json.RawMessage)
	if !ok {
		return nil, fmt.Errorf("sljmotion: job result is %T, not a JSON document; use JobResult", val)
	}
	return raw, nil
}

// JobMetrics snapshots queue depth, throughput counters and latency stats.
func (q *JobQueue) JobMetrics() JobMetrics { return q.mgr.Metrics() }

// Jobs lists the queue's job history newest-first, filtered per f. It
// returns nil when the underlying dispatcher has no listing capability
// (custom dispatchers may not). With a journal configured the history
// survives restarts.
func (q *JobQueue) Jobs(f JobFilter) []JobStatus {
	if l, ok := q.mgr.(jobs.Lister); ok {
		return l.Jobs(f)
	}
	return nil
}

// Trace returns the span tree of a job the queue still remembers: where
// its wall-clock time went, from submission through queue wait, the
// executed pipeline stages and the terminal publish. Remote queues include
// the dispatch fan-out spans with the worker node's tree grafted under the
// winning submit attempt. It returns ErrJobNotFound for unknown or expired
// ids, for journal-replayed jobs of an earlier process (their execution
// was not observed by this one), and for backends without the tracing
// capability (DESIGN.md §13).
func (q *JobQueue) Trace(id string) (*JobTrace, error) {
	t, ok := q.mgr.(jobs.Tracer)
	if !ok {
		return nil, ErrJobNotFound
	}
	return t.Trace(id)
}

// ErrWatchUnsupported marks a job backend without the streaming
// capability (custom dispatchers may not implement it; the in-process
// and remote backends both do).
var ErrWatchUnsupported = errors.New("sljmotion: this job backend does not support event streaming")

// Watch streams one job's lifecycle and per-stage progress events: queued
// → running → one stage event per executed pipeline stage → done or
// failed. The channel closes after the terminal event (the result is
// guaranteed fetchable by then), on ctx cancellation, or on queue
// shutdown. Watching an already-finished job delivers its terminal event
// immediately. Remote queues proxy the stream from the job's worker node,
// falling back to polling-backed synthetic events if the stream drops
// (DESIGN.md §12).
func (q *JobQueue) Watch(ctx context.Context, id string) (<-chan JobEvent, error) {
	w, ok := q.mgr.(jobs.Watcher)
	if !ok {
		return nil, ErrWatchUnsupported
	}
	return w.Watch(ctx, id, 0)
}

// OpenJobJournal opens (or creates) the durable job journal at path with
// the production policy: fsync on terminal transitions, 64 MiB segments,
// compaction once half the records belong to evicted jobs. Pass it to
// JobQueueOptions.Journal and close it after the queue closes.
func OpenJobJournal(path string) (*JobJournalFile, error) {
	return journal.Open(path, journal.DefaultConfig())
}

// Close drains the queue and shuts the workers down; a cancelled ctx
// hard-aborts in-flight analyses (see DESIGN.md §8).
func (q *JobQueue) Close(ctx context.Context) error { return q.mgr.Close(ctx) }

// DefaultConfig returns the paper-faithful analyzer configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultJumpParams returns the default synthetic clip parameters
// (192×144, 20 frames, well-formed jump).
func DefaultJumpParams() JumpParams { return synth.DefaultJumpParams() }

// DefaultAnnotationError returns a plausible human annotation error model.
func DefaultAnnotationError() ManualAnnotationError { return synth.DefaultAnnotationError() }

// GenerateSyntheticJump renders a synthetic standing-long-jump clip with
// full ground truth (poses, masks, true background).
func GenerateSyntheticJump(p JumpParams) (*Video, error) { return synth.Generate(p) }

// ChildDimensions returns stick dimensions for a subject of the given
// height in pixels, with child body proportions.
func ChildDimensions(heightPx float64) Dimensions { return stickmodel.ChildDimensions(heightPx) }

// Standards returns Table 1 of the paper.
func Standards() []Standard { return scoring.Standards() }

// Rules returns Table 2 of the paper.
func Rules() []Rule { return scoring.Rules() }

// FixedWindows returns the paper's stage windows for an n-frame clip.
func FixedWindows(n int) (initiation, airLanding Window) { return track.FixedWindows(n) }

// ComparePoses computes pose error measures under shared dimensions.
func ComparePoses(est, truth Pose, dims Dimensions) PoseError {
	return metrics.ComparePoses(est, truth, dims)
}

// CompareMasks scores a predicted mask against ground truth.
func CompareMasks(pred, truth *Mask) (MaskScores, error) { return metrics.CompareMasks(pred, truth) }

// ReadPPMFile loads an RGB frame from a binary PPM file.
func ReadPPMFile(path string) (*Image, error) { return imaging.ReadPPMFile(path) }

// WritePPMFile saves an RGB frame as a binary PPM file.
func WritePPMFile(path string, img *Image) error { return imaging.WritePPMFile(path, img) }

// ASCIIMask renders a silhouette as terminal-friendly ASCII art, the form
// in which the repository reproduces the paper's figures.
func ASCIIMask(m *Mask, maxW int) string { return imaging.ASCIIMask(m, maxW) }
